"""Networks of timed automata and their compiled (flattened) form.

A :class:`Network` collects

* global declarations: clocks, bounded integer variables, named constants
  and synchronisation channels, and
* a list of *instances* of :class:`~repro.core.automaton.TimedAutomaton`
  templates.

Before analysis the network is *compiled* into a :class:`CompiledNetwork`:
local names are qualified with the instance name (``"RAD.x"``), named
constants are inlined into expressions, guards/updates are translated into
Python closures over an indexed variable vector, and clock constraints are
lowered to raw DBM constraints.  The compiled form is what the symbolic
semantics in :mod:`repro.core.successors` operates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.core import expressions as ex
from repro.core.automaton import Edge, Location, TimedAutomaton
from repro.core.declarations import BINARY, BROADCAST, Channel, Clock, Constant, IntVariable
from repro.core.guards import ClockConstraint
from repro.util.errors import ModelError
from repro.util.intervals import IntInterval
from repro.util.naming import check_identifier, qualify

__all__ = [
    "Network",
    "CompiledNetwork",
    "CompiledInstance",
    "CompiledLocation",
    "CompiledEdge",
    "CompiledConstraint",
]


@dataclass(frozen=True)
class CompiledConstraint:
    """A clock constraint lowered to DBM form.

    The raw bound to apply is ``bound(sign * rhs(v), strict)`` on the matrix
    entry ``(i, j)``, where ``v`` is the current variable vector.
    """

    i: int
    j: int
    sign: int
    strict: bool
    rhs: Callable[[Sequence[int]], int]
    #: constant value of the right-hand side if it does not depend on
    #: variables, else ``None`` (used for extrapolation bounds and display)
    rhs_const: int | None
    source: ClockConstraint


@dataclass(frozen=True)
class CompiledEdge:
    """A fully resolved edge of one instance."""

    instance: int
    edge_index: int
    source: int
    target: int
    clock_constraints: tuple[CompiledConstraint, ...]
    data_guard: Callable[[Sequence[int]], bool] | None
    channel: Channel | None
    direction: str | None  # '!' or '?'
    update: Callable[[Sequence[int]], tuple[int, ...]] | None
    resets: tuple[tuple[int, Callable[[Sequence[int]], int]], ...]
    original: Edge
    #: variable indices read by the guard, update right-hand sides, reset
    #: values and clock-constraint right-hand sides (static independence
    #: analysis for the partial-order reduction)
    reads: frozenset[int] = frozenset()
    #: variable indices written by the updates
    writes: frozenset[int] = frozenset()

    def data_enabled(self, variables: Sequence[int]) -> bool:
        """Evaluate the data guard against the variable vector."""
        return self.data_guard is None or bool(self.data_guard(variables))


@dataclass(frozen=True)
class CompiledLocation:
    """A location of one instance with its compiled invariant."""

    instance: int
    index: int
    name: str
    urgent: bool
    committed: bool
    invariant: tuple[CompiledConstraint, ...]


@dataclass
class CompiledInstance:
    """One automaton instance inside the compiled network."""

    index: int
    name: str
    template: TimedAutomaton
    locations: list[CompiledLocation] = field(default_factory=list)
    location_index: dict[str, int] = field(default_factory=dict)
    initial: int = 0
    outgoing: list[list[CompiledEdge]] = field(default_factory=list)

    def location_name(self, location: int) -> str:
        return self.locations[location].name


class Network:
    """A network (parallel composition) of timed automaton instances."""

    def __init__(self, name: str = "system"):
        check_identifier(name, "network")
        self.name = name
        self.clocks: dict[str, Clock] = {}
        self.variables: dict[str, IntVariable] = {}
        self.constants: dict[str, Constant] = {}
        self.channels: dict[str, Channel] = {}
        self.instances: list[tuple[str, TimedAutomaton]] = []

    # -- global declarations --------------------------------------------------
    def add_clock(self, name: str) -> Clock:
        """Declare a global clock."""
        self._check_fresh(name)
        clock = Clock(name)
        self.clocks[name] = clock
        return clock

    def add_variable(
        self, name: str, initial: int = 0, lo: int | None = None, hi: int | None = None
    ) -> IntVariable:
        """Declare a global bounded integer variable."""
        self._check_fresh(name)
        if lo is None and hi is None:
            domain = IntInterval(-32768, 32767)
        else:
            domain = IntInterval(lo if lo is not None else 0, hi if hi is not None else 32767)
        variable = IntVariable(name, initial, domain)
        self.variables[name] = variable
        return variable

    def add_constant(self, name: str, value: int) -> Constant:
        """Declare a global named constant (inlined at compile time)."""
        self._check_fresh(name)
        constant = Constant(name, int(value))
        self.constants[name] = constant
        return constant

    def add_channel(self, name: str, kind: str = BINARY, urgent: bool = False) -> Channel:
        """Declare a synchronisation channel."""
        self._check_fresh(name)
        channel = Channel(name, kind, urgent)
        self.channels[name] = channel
        return channel

    def add_broadcast_channel(self, name: str, urgent: bool = False) -> Channel:
        """Declare a broadcast channel (shorthand)."""
        return self.add_channel(name, kind=BROADCAST, urgent=urgent)

    def _check_fresh(self, name: str) -> None:
        for table, kind in (
            (self.clocks, "clock"),
            (self.variables, "variable"),
            (self.constants, "constant"),
            (self.channels, "channel"),
        ):
            if name in table:
                raise ModelError(f"global name {name!r} already declared as a {kind}")

    # -- instances ---------------------------------------------------------------
    def add_instance(self, automaton: TimedAutomaton, name: str | None = None) -> str:
        """Add an instance of *automaton*; returns the instance name."""
        instance_name = name or automaton.name
        check_identifier(instance_name, "instance")
        if any(existing == instance_name for existing, _ in self.instances):
            raise ModelError(f"instance name {instance_name!r} already used")
        self.instances.append((instance_name, automaton))
        return instance_name

    def instance_names(self) -> list[str]:
        return [name for name, _ in self.instances]

    # -- compilation ------------------------------------------------------------------
    def compile(self) -> "CompiledNetwork":
        """Flatten and compile the network for analysis."""
        if not self.instances:
            raise ModelError("cannot compile a network without instances")
        return CompiledNetwork(self)

    def __str__(self) -> str:
        return (
            f"Network({self.name}: {len(self.instances)} instances, "
            f"{len(self.channels)} channels, {len(self.variables)} globals)"
        )

    __repr__ = __str__


class CompiledNetwork:
    """The flattened, analysis-ready form of a :class:`Network`."""

    def __init__(self, network: Network):
        self.network = network
        self.name = network.name
        self.channels = dict(network.channels)

        # ---- clock table: index 0 is the reference clock -------------------
        self.clock_names: list[str] = ["__ref__"]
        self.clock_index: dict[str, int] = {}
        for name in network.clocks:
            self.clock_index[name] = len(self.clock_names)
            self.clock_names.append(name)

        # ---- variable table --------------------------------------------------
        self.variable_names: list[str] = []
        self.variable_index: dict[str, int] = {}
        self.variable_domains: list[IntInterval] = []
        initial_values: list[int] = []
        for name, variable in network.variables.items():
            self.variable_index[name] = len(self.variable_names)
            self.variable_names.append(name)
            self.variable_domains.append(variable.domain)
            initial_values.append(variable.initial)

        global_constants = {name: c.value for name, c in network.constants.items()}

        # ---- per-instance declarations ---------------------------------------
        self.instances: list[CompiledInstance] = []
        instance_scopes: list[dict] = []
        for instance_idx, (instance_name, template) in enumerate(network.instances):
            template.validate()
            rename: dict[str, str] = {}
            for clock_name in template.clocks:
                qualified = qualify(instance_name, clock_name)
                rename[clock_name] = qualified
                self.clock_index[qualified] = len(self.clock_names)
                self.clock_names.append(qualified)
            for var_name, variable in template.variables.items():
                qualified = qualify(instance_name, var_name)
                rename[var_name] = qualified
                self.variable_index[qualified] = len(self.variable_names)
                self.variable_names.append(qualified)
                self.variable_domains.append(variable.domain)
                initial_values.append(variable.initial)
            constants = dict(global_constants)
            constants.update({name: c.value for name, c in template.constants.items()})
            instance_scopes.append({"rename": rename, "constants": constants})
            self.instances.append(
                CompiledInstance(index=instance_idx, name=instance_name, template=template)
            )

        self.initial_variables: tuple[int, ...] = tuple(initial_values)
        self.dim = len(self.clock_names)

        #: per-clock maximal constants (for extrapolation); updated lazily
        self._max_constants: list[int] = [0] * self.dim
        #: per-clock lower/upper bound constants (for LU extrapolation):
        #: ``L`` collects constants a clock is bounded from below against,
        #: ``U`` those it is bounded from above against (docs/reductions.md)
        self._lower_constants: list[int] = [0] * self.dim
        self._upper_constants: list[int] = [0] * self.dim
        #: extra constants registered by queries (e.g. WCRT bound being tested)
        self._extra_constants: dict[int, int] = {}
        #: verified replication-symmetry specification, attached by the
        #: architecture compiler (:class:`repro.core.symmetry.SymmetrySpec`
        #: or None when the network carries no verified automorphism)
        self.symmetry = None
        #: bumped whenever the effective extrapolation bounds change, so that
        #: consumers (the successor generator) can cache derived vectors
        self._bounds_version: int = 0

        # ---- compile locations and edges ---------------------------------------
        domains_by_name = {
            name: self.variable_domains[idx] for name, idx in self.variable_index.items()
        }
        for instance_idx, (instance_name, template) in enumerate(network.instances):
            compiled = self.instances[instance_idx]
            scope = instance_scopes[instance_idx]
            rename, constants = scope["rename"], scope["constants"]

            for loc_idx, (loc_name, location) in enumerate(template.locations.items()):
                invariant = self._compile_constraints(
                    location.invariant.constraints, rename, constants, domains_by_name
                )
                compiled.locations.append(
                    CompiledLocation(
                        instance=instance_idx,
                        index=loc_idx,
                        name=loc_name,
                        urgent=location.urgent,
                        committed=location.committed,
                        invariant=invariant,
                    )
                )
                compiled.location_index[loc_name] = loc_idx
            if template.initial_location is None:
                raise ModelError(f"automaton {template.name} has no initial location")
            compiled.initial = compiled.location_index[template.initial_location]
            compiled.outgoing = [[] for _ in compiled.locations]

            for edge_idx, edge in enumerate(template.edges):
                compiled_edge = self._compile_edge(
                    instance_idx, edge_idx, edge, compiled, rename, constants, domains_by_name
                )
                compiled.outgoing[compiled_edge.source].append(compiled_edge)

        self._validate_syncs()
        self._compute_max_constants(domains_by_name)

    # -- compilation helpers ----------------------------------------------------------
    def _resolve_expr(
        self, expr: ex.Expr, rename: Mapping[str, str], constants: Mapping[str, int]
    ) -> ex.Expr:
        return ex.substitute(expr, constants).rename(rename)

    def _compile_constraints(
        self,
        constraints: Sequence[ClockConstraint],
        rename: Mapping[str, str],
        constants: Mapping[str, int],
        domains: Mapping[str, IntInterval],
    ) -> tuple[CompiledConstraint, ...]:
        compiled: list[CompiledConstraint] = []
        for constraint in constraints:
            clock = rename.get(constraint.clock, constraint.clock)
            other = rename.get(constraint.other, constraint.other) if constraint.other else None
            if clock not in self.clock_index:
                raise ModelError(f"unknown clock {clock!r} in constraint {constraint}")
            if other is not None and other not in self.clock_index:
                raise ModelError(f"unknown clock {other!r} in constraint {constraint}")
            i = self.clock_index[clock]
            j = self.clock_index[other] if other is not None else 0
            rhs = self._resolve_expr(constraint.rhs, rename, constants)
            rhs_fn = ex.compile_int_expr(rhs, self.variable_index)
            rhs_const = rhs.value if isinstance(rhs, ex.IntConst) else None
            resolved = ClockConstraint(clock, constraint.op, rhs, other)
            entries: list[tuple[int, int, int, bool]] = []
            if constraint.op in ("<", "<="):
                entries.append((i, j, +1, constraint.op == "<"))
            elif constraint.op in (">", ">="):
                entries.append((j, i, -1, constraint.op == ">"))
            else:  # ==
                entries.append((i, j, +1, False))
                entries.append((j, i, -1, False))
            for ei, ej, sign, strict in entries:
                compiled.append(
                    CompiledConstraint(
                        i=ei, j=ej, sign=sign, strict=strict, rhs=rhs_fn,
                        rhs_const=rhs_const, source=resolved,
                    )
                )
        return tuple(compiled)

    def _compile_edge(
        self,
        instance_idx: int,
        edge_idx: int,
        edge: Edge,
        compiled: CompiledInstance,
        rename: Mapping[str, str],
        constants: Mapping[str, int],
        domains: Mapping[str, IntInterval],
    ) -> CompiledEdge:
        if edge.source not in compiled.location_index or edge.target not in compiled.location_index:
            raise ModelError(
                f"edge {edge} of {compiled.name} references an unknown location"
            )
        clock_constraints = self._compile_constraints(
            edge.guard.clock_constraints, rename, constants, domains
        )
        data = self._resolve_expr(edge.guard.data, rename, constants)
        data_guard = None
        if not (isinstance(data, ex.BoolConst) and data.value):
            data_guard = ex.compile_bool_expr(data, self.variable_index)

        channel = None
        direction = None
        if edge.sync is not None:
            if edge.sync.channel not in self.channels:
                raise ModelError(
                    f"edge {edge} of {compiled.name} synchronises on undeclared channel "
                    f"{edge.sync.channel!r}"
                )
            channel = self.channels[edge.sync.channel]
            direction = edge.sync.direction
            if channel.urgent and clock_constraints:
                raise ModelError(
                    f"edge {edge} of {compiled.name}: clock guards are not allowed on "
                    f"urgent channel {channel.name!r} (UPPAAL restriction)"
                )
            if channel.kind == BROADCAST and direction == "?" and clock_constraints:
                raise ModelError(
                    f"edge {edge} of {compiled.name}: clock guards on broadcast receivers "
                    "are not supported"
                )

        read_names: set[str] = set(data.variables())
        write_names: set[str] = set()
        for constraint in clock_constraints:
            read_names |= constraint.source.rhs.variables()

        update = None
        if edge.updates:
            resolved_updates = [
                ex.Assignment(
                    rename.get(u.target, u.target),
                    self._resolve_expr(u.expr, rename, constants),
                )
                for u in edge.updates
            ]
            for u in resolved_updates:
                if u.target not in self.variable_index:
                    raise ModelError(
                        f"edge {edge} of {compiled.name} assigns to unknown variable {u.target!r}"
                    )
                read_names |= u.expr.variables()
                write_names.add(u.target)
            update = ex.compile_updates(resolved_updates, self.variable_index)

        resets: list[tuple[int, Callable[[Sequence[int]], int]]] = []
        for clock, value in edge.resets:
            qualified = rename.get(clock, clock)
            if qualified not in self.clock_index:
                raise ModelError(f"edge {edge} of {compiled.name} resets unknown clock {clock!r}")
            value_expr = self._resolve_expr(value, rename, constants)
            read_names |= value_expr.variables()
            resets.append(
                (self.clock_index[qualified], ex.compile_int_expr(value_expr, self.variable_index))
            )

        return CompiledEdge(
            instance=instance_idx,
            edge_index=edge_idx,
            source=compiled.location_index[edge.source],
            target=compiled.location_index[edge.target],
            clock_constraints=clock_constraints,
            data_guard=data_guard,
            channel=channel,
            direction=direction,
            update=update,
            resets=tuple(resets),
            original=edge,
            reads=frozenset(
                self.variable_index[name] for name in read_names if name in self.variable_index
            ),
            writes=frozenset(self.variable_index[name] for name in write_names),
        )

    def _validate_syncs(self) -> None:
        """Check that binary channels have both senders and receivers somewhere."""
        senders: dict[str, int] = {}
        receivers: dict[str, int] = {}
        for instance in self.instances:
            for edges in instance.outgoing:
                for edge in edges:
                    if edge.channel is None:
                        continue
                    table = senders if edge.direction == "!" else receivers
                    table[edge.channel.name] = table.get(edge.channel.name, 0) + 1
        for name, channel in self.channels.items():
            if channel.kind == BINARY:
                if senders.get(name) and not receivers.get(name):
                    raise ModelError(
                        f"binary channel {name!r} has senders but no receivers; "
                        "synchronisation could never fire"
                    )

    def _compute_max_constants(self, domains: Mapping[str, IntInterval]) -> None:
        """Derive per-clock maximal (and lower/upper) extrapolation constants.

        Every compiled entry ``(i, j)`` encodes ``x_i - x_j ≼ rhs``: it
        bounds clock ``i`` from above (relative to ``j``) and clock ``j``
        from below (relative to ``i``), so its constant feeds ``U[i]`` and
        ``L[j]``.  ``x >= c`` compiles to the entry ``(0, x)`` and lands in
        ``L[x]`` only; ``x <= c`` compiles to ``(x, 0)`` and lands in
        ``U[x]`` only; equalities emit both entries, so ``L = U`` for
        equality-driven clocks and LU extrapolation coincides with the
        classical maximal-constant grid there.
        """
        maxima = [0] * self.dim
        lower = [0] * self.dim
        upper = [0] * self.dim
        domain_env = dict(domains)

        def visit(constraint: CompiledConstraint) -> None:
            if constraint.rhs_const is not None:
                value = abs(constraint.rhs_const)
            else:
                value = constraint.source.max_constant(domain_env)
            if constraint.i != 0:
                maxima[constraint.i] = max(maxima[constraint.i], value)
                upper[constraint.i] = max(upper[constraint.i], value)
            if constraint.j != 0:
                maxima[constraint.j] = max(maxima[constraint.j], value)
                lower[constraint.j] = max(lower[constraint.j], value)

        for instance in self.instances:
            for location in instance.locations:
                for constraint in location.invariant:
                    visit(constraint)
            for edges in instance.outgoing:
                for edge in edges:
                    for constraint in edge.clock_constraints:
                        visit(constraint)
        self._max_constants = maxima
        self._lower_constants = lower
        self._upper_constants = upper

    # -- public helpers --------------------------------------------------------------------
    @property
    def max_constants(self) -> list[int]:
        """Per-clock extrapolation constants (index 0 is the reference clock)."""
        bounds = list(self._max_constants)
        for idx, value in self._extra_constants.items():
            bounds[idx] = max(bounds[idx], value)
        return bounds

    @property
    def lu_bounds(self) -> tuple[list[int], list[int]]:
        """Per-clock ``(lower, upper)`` constants for LU extrapolation.

        Query-registered constants raise *both* sides: a ``sup`` query reads
        the observer clock's upper bound below its ceiling, so distinctions
        up to the registered constant must survive on both the raise
        (``L``) and the relax (``U``) side of Extra_LU.
        """
        lower = list(self._lower_constants)
        upper = list(self._upper_constants)
        for idx, value in self._extra_constants.items():
            lower[idx] = max(lower[idx], value)
            upper[idx] = max(upper[idx], value)
        return lower, upper

    def register_query_constant(self, clock: "str | int", value: int) -> None:
        """Raise the extrapolation ceiling of *clock* to at least *value*.

        Queries that compare an observer clock against a bound (the WCRT
        binary search, ``sup`` extraction) must register that bound here so
        that extrapolation does not abstract away the distinctions the query
        needs; this mirrors the fact that UPPAAL includes property constants
        when computing maximal bounds.
        """
        idx = clock if isinstance(clock, int) else self.clock_id(clock)
        previous = self._extra_constants.get(idx, 0)
        merged = max(previous, int(value))
        if merged != previous:
            self._extra_constants[idx] = merged
            self._bounds_version += 1

    def clear_query_constants(self) -> None:
        """Remove all constants registered via :meth:`register_query_constant`."""
        if self._extra_constants:
            self._extra_constants.clear()
            self._bounds_version += 1

    @property
    def max_constants_version(self) -> int:
        """Monotone counter identifying the current extrapolation bounds.

        Changes whenever :meth:`register_query_constant`,
        :meth:`clear_query_constants` or :meth:`restore_query_constants`
        alters the effective bounds; consumers may cache bound-derived data
        keyed by this version.
        """
        return self._bounds_version

    def query_constants_snapshot(self) -> dict[int, int]:
        """Snapshot of the query-registered constants (see below).

        Queries that raise extrapolation ceilings must not leak those
        constants into later, unrelated queries on the same network (leaked
        constants silently coarsen the abstraction and inflate state spaces).
        Callers take a snapshot before registering and restore it afterwards::

            saved = network.query_constants_snapshot()
            try:
                network.register_query_constant(...)
                ...explore...
            finally:
                network.restore_query_constants(saved)
        """
        return dict(self._extra_constants)

    def restore_query_constants(self, snapshot: Mapping[int, int]) -> None:
        """Restore the query constants captured by :meth:`query_constants_snapshot`."""
        if dict(snapshot) != self._extra_constants:
            self._extra_constants = dict(snapshot)
            self._bounds_version += 1

    def clock_id(self, name: str) -> int:
        """DBM index of a clock by (possibly qualified) name."""
        try:
            return self.clock_index[name]
        except KeyError as exc:
            raise ModelError(f"unknown clock {name!r}") from exc

    def variable_id(self, name: str) -> int:
        """Vector index of a variable by (possibly qualified) name."""
        try:
            return self.variable_index[name]
        except KeyError as exc:
            raise ModelError(f"unknown variable {name!r}") from exc

    def instance_id(self, name: str) -> int:
        """Index of an instance by name."""
        for instance in self.instances:
            if instance.name == name:
                return instance.index
        raise ModelError(f"unknown instance {name!r}")

    def location_id(self, instance: str, location: str) -> tuple[int, int]:
        """(instance index, location index) for ``instance.location``."""
        inst = self.instances[self.instance_id(instance)]
        try:
            return inst.index, inst.location_index[location]
        except KeyError as exc:
            raise ModelError(f"unknown location {instance}.{location}") from exc

    def initial_locations(self) -> tuple[int, ...]:
        """Vector of initial location indices."""
        return tuple(instance.initial for instance in self.instances)

    def location_vector_names(self, locations: Sequence[int]) -> tuple[str, ...]:
        """Readable names for a location vector."""
        return tuple(
            f"{instance.name}.{instance.locations[loc].name}"
            for instance, loc in zip(self.instances, locations)
        )

    def variable_valuation(self, variables: Sequence[int]) -> dict[str, int]:
        """Mapping from variable names to their values in a state vector."""
        return dict(zip(self.variable_names, variables))

    def check_variable_ranges(self, variables: Sequence[int]) -> None:
        """Raise if any variable left its declared domain (UPPAAL run-time error)."""
        for value, domain, name in zip(variables, self.variable_domains, self.variable_names):
            if not domain.contains(value):
                raise ModelError(
                    f"variable {name!r} left its domain {domain}: value {value}"
                )

    def __str__(self) -> str:
        return (
            f"CompiledNetwork({self.name}: {len(self.instances)} instances, "
            f"{self.dim - 1} clocks, {len(self.variable_names)} variables)"
        )

    __repr__ = __str__
