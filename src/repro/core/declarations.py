"""Declarations of clocks, bounded integer variables, constants and channels.

These small value classes are shared by automaton templates (local
declarations) and by :class:`~repro.core.network.Network` (global
declarations).  All of them are immutable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import ModelError
from repro.util.intervals import IntInterval
from repro.util.naming import check_identifier

__all__ = ["Clock", "IntVariable", "Constant", "Channel", "BINARY", "BROADCAST"]

#: Default domain of an integer variable, mirroring UPPAAL's int16 default.
DEFAULT_INT_RANGE = IntInterval(-32768, 32767)

#: Channel kinds
BINARY = "binary"
BROADCAST = "broadcast"


@dataclass(frozen=True)
class Clock:
    """A clock declaration.

    Clocks advance at rate one in every location and can only be reset to
    integer constants on edges.
    """

    name: str

    def __post_init__(self):
        check_identifier(self.name, "clock")

    def __str__(self) -> str:
        return f"clock {self.name}"


@dataclass(frozen=True)
class IntVariable:
    """A bounded integer variable declaration.

    ``initial`` must lie inside ``domain``.  The domain is used both for
    run-time range checking (UPPAAL semantics: assigning outside the range is
    a modelling error) and for interval analysis of expressions.
    """

    name: str
    initial: int = 0
    domain: IntInterval = field(default=DEFAULT_INT_RANGE)

    def __post_init__(self):
        check_identifier(self.name, "variable")
        if not self.domain.contains(self.initial):
            raise ModelError(
                f"initial value {self.initial} of variable {self.name!r} "
                f"outside its domain {self.domain}"
            )

    def __str__(self) -> str:
        return f"int[{self.domain.lo},{self.domain.hi}] {self.name} = {self.initial}"


@dataclass(frozen=True)
class Constant:
    """A named integer constant (UPPAAL ``const int``)."""

    name: str
    value: int

    def __post_init__(self):
        check_identifier(self.name, "constant")

    def __str__(self) -> str:
        return f"const int {self.name} = {self.value}"


@dataclass(frozen=True)
class Channel:
    """A synchronisation channel.

    ``kind`` is either ``"binary"`` (hand-shake between exactly one sender
    and one receiver) or ``"broadcast"`` (one sender, all enabled receivers,
    never blocking for the sender).  ``urgent`` channels forbid the passage
    of time whenever a synchronisation on the channel is enabled -- this is
    the mechanism behind the paper's ``hurry!`` pattern that enforces greedy
    behaviour of the hardware and bus automata.
    """

    name: str
    kind: str = BINARY
    urgent: bool = False

    def __post_init__(self):
        check_identifier(self.name, "channel")
        if self.kind not in (BINARY, BROADCAST):
            raise ModelError(f"unknown channel kind {self.kind!r}")

    def __str__(self) -> str:
        qualifiers = []
        if self.urgent:
            qualifiers.append("urgent")
        if self.kind == BROADCAST:
            qualifiers.append("broadcast")
        qualifiers.append("chan")
        return " ".join(qualifiers) + f" {self.name}"
