"""Exploration statistics collected by the reachability engine.

The paper discusses verification effort (state-space sizes, the event models
for which exhaustive search becomes infeasible, the fall-back to depth-first
"structured testing").  These counters are what the corresponding benchmark
(``benchmarks/bench_exploration_effort.py``) reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["ExplorationStatistics"]


@dataclass
class ExplorationStatistics:
    """Counters describing one exploration run."""

    #: symbolic states popped from the waiting list and expanded
    states_explored: int = 0
    #: symbolic states currently retained in the passed list
    states_stored: int = 0
    #: discrete successor transitions generated
    transitions: int = 0
    #: successors discarded because an already-stored zone included them
    inclusions: int = 0
    #: inclusion discards that happened while LU extrapolation was active
    #: (the coarser Extra_LU zones subsume states the max-bounds grid keeps)
    states_subsumed_lu: int = 0
    #: firing plans skipped by the partial-order reduction (an ample
    #: singleton was expanded instead of the full commuting interleaving)
    plans_commuted: int = 0
    #: successor keys rewritten to a different canonical representative by
    #: the symmetry reduction
    keys_folded: int = 0
    #: maximum length reached by the waiting list
    peak_waiting: int = 0
    #: worker processes the sharded engine ran with (0 = scalar/block engine);
    #: the shard counters are topology observations, not exploration
    #: semantics, so they are excluded from equality comparisons -- a sharded
    #: run must compare equal to its scalar twin on everything else
    shard_workers: int = field(default=0, compare=False)
    #: successor candidates handed off to a different shard (the generating
    #: worker did not own the target discrete key)
    shard_handoffs: int = field(default=0, compare=False)
    #: frontier states shipped between shards by the deterministic
    #: work-stealing pass
    shard_steals: int = field(default=0, compare=False)
    #: wall-clock duration of the exploration in seconds
    elapsed_seconds: float = 0.0
    #: why the exploration stopped: "exhausted", "goal", "state-budget",
    #: "time-budget"
    termination: str = "exhausted"
    #: search order that was used
    search_order: str = "bfs"

    _started_at: float | None = field(default=None, repr=False, compare=False)

    # -- timing helpers -----------------------------------------------------
    def start_timer(self) -> None:
        self._started_at = time.perf_counter()

    def stop_timer(self) -> None:
        if self._started_at is not None:
            self.elapsed_seconds = time.perf_counter() - self._started_at

    @property
    def exhaustive(self) -> bool:
        """True when the whole reachable state space was explored."""
        return self.termination in ("exhausted", "goal")

    @property
    def states_per_second(self) -> float:
        """Exploration throughput (0.0 when no time was measured)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.states_explored / self.elapsed_seconds

    def merge(self, other: "ExplorationStatistics") -> None:
        """Accumulate the counters of another run (used by multi-run queries
        such as the WCRT binary search); timing adds up, peaks take the max."""
        self.states_explored += other.states_explored
        self.states_stored += other.states_stored
        self.transitions += other.transitions
        self.inclusions += other.inclusions
        self.states_subsumed_lu += other.states_subsumed_lu
        self.plans_commuted += other.plans_commuted
        self.keys_folded += other.keys_folded
        self.elapsed_seconds += other.elapsed_seconds
        self.peak_waiting = max(self.peak_waiting, other.peak_waiting)
        self.shard_workers = max(self.shard_workers, other.shard_workers)
        self.shard_handoffs += other.shard_handoffs
        self.shard_steals += other.shard_steals

    def reduction_counters(self) -> dict:
        """The non-zero reduction counters (``docs/reductions.md``)."""
        counters = {
            "states_subsumed_lu": self.states_subsumed_lu,
            "plans_commuted": self.plans_commuted,
            "keys_folded": self.keys_folded,
        }
        return {name: value for name, value in counters.items() if value}

    def shard_counters(self) -> dict:
        """The non-zero shard counters (``docs/performance.md``).

        Zeros are dropped for the same reason as the reduction counters:
        scalar runs (and every trajectory point built from them) keep the
        exact pre-sharding format.
        """
        counters = {
            "shard_workers": self.shard_workers,
            "shard_handoffs": self.shard_handoffs,
            "shard_steals": self.shard_steals,
        }
        return {name: value for name, value in counters.items() if value}

    def as_dict(self) -> dict:
        """Plain-dict view used by report formatting and benchmarks.

        The reduction counters only appear when a reduction actually acted,
        so the dict (and every trajectory point built from it) keeps the
        exact pre-reduction format on unreduced runs.
        """
        return {
            "states_explored": self.states_explored,
            "states_stored": self.states_stored,
            "transitions": self.transitions,
            "inclusions": self.inclusions,
            **self.reduction_counters(),
            **self.shard_counters(),
            "peak_waiting": self.peak_waiting,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "states_per_second": round(self.states_per_second, 1),
            "termination": self.termination,
            "search_order": self.search_order,
        }

    def __str__(self) -> str:
        return (
            f"{self.states_explored} states explored, {self.states_stored} stored, "
            f"{self.transitions} transitions, {self.elapsed_seconds:.3f}s "
            f"({self.termination}, {self.search_order})"
        )
