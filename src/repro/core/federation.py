"""Federations: finite unions of DBMs over the same clock set.

Zones (single DBMs) are closed under intersection, delay and reset, but not
under union or complement.  A :class:`Federation` keeps a list of
non-redundant DBMs and is used where a union naturally appears, e.g. for the
set of zones stored per discrete state in the passed list and for reporting
the clock valuations that witness a property violation.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.core.dbm import DBM
from repro.util.errors import ModelError

__all__ = ["Federation"]


class Federation:
    """A finite, redundancy-reduced union of :class:`~repro.core.dbm.DBM` zones.

    Internally the raw-bound matrices of the member zones are also kept
    stacked in one numpy array so that the passed-list inclusion check (the
    hottest operation of the reachability engine) is a single vectorised
    comparison instead of a Python loop per stored zone.
    """

    __slots__ = ("dim", "_zones", "_stack")

    def __init__(self, dim: int, zones: Iterable[DBM] = ()):
        self.dim = dim
        self._zones: list[DBM] = []
        self._stack: np.ndarray = np.empty((0, dim * dim), dtype=np.int64)
        for zone in zones:
            self.add(zone)

    # -- collection protocol ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._zones)

    def __iter__(self) -> Iterator[DBM]:
        return iter(self._zones)

    def __bool__(self) -> bool:
        return bool(self._zones)

    @property
    def zones(self) -> tuple[DBM, ...]:
        """The member zones (read-only view)."""
        return tuple(self._zones)

    # -- mutation -----------------------------------------------------------------
    def add(self, zone: DBM) -> bool:
        """Add *zone* unless it is empty or already covered.

        Zones previously stored that are covered by the new zone are removed.
        Returns ``True`` when the federation actually grew (i.e. the zone was
        not redundant) -- this is exactly the check used by the passed list of
        the reachability engine.
        """
        if zone.dim != self.dim:
            raise ModelError("zone dimension does not match federation dimension")
        if zone.is_empty():
            return False
        candidate = np.asarray(zone.m, dtype=np.int64)
        if len(self._zones):
            # covered by an existing zone?  (element-wise <= against the stack)
            if bool(np.any(np.all(candidate <= self._stack, axis=1))):
                return False
            # drop stored zones that the new zone covers
            covered = np.all(self._stack <= candidate, axis=1)
            if bool(covered.any()):
                keep = ~covered
                self._zones = [z for z, k in zip(self._zones, keep) if k]
                self._stack = self._stack[keep]
        self._zones.append(zone)
        self._stack = np.vstack([self._stack, candidate[None, :]])
        return True

    def covers(self, zone: DBM) -> bool:
        """Return ``True`` if some member zone includes *zone* entirely.

        Note this is inclusion in a *single* member (the standard passed-list
        check), not inclusion in the union.
        """
        return any(zone.is_subset_of(existing) for existing in self._zones)

    # -- queries ----------------------------------------------------------------------
    def is_empty(self) -> bool:
        """True when the federation contains no zone."""
        return not self._zones

    def intersects(self, zone: DBM) -> bool:
        """True when at least one member zone intersects *zone*."""
        return any(member.intersects(zone) for member in self._zones)

    def contains_point(self, point) -> bool:
        """True when some member zone contains the concrete valuation."""
        return any(member.contains_point(point) for member in self._zones)

    def upper_bound(self, clock: int) -> int:
        """Largest raw upper bound of *clock* over all member zones."""
        if not self._zones:
            raise ModelError("empty federation has no bounds")
        return max(zone.upper_bound(clock) for zone in self._zones)

    def __str__(self) -> str:
        return " U ".join(str(zone) for zone in self._zones) or "(empty)"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Federation(dim={self.dim}, size={len(self)})"
