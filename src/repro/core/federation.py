"""Federations: finite unions of DBMs over the same clock set.

Zones (single DBMs) are closed under intersection, delay and reset, but not
under union or complement.  A :class:`Federation` keeps a list of
non-redundant DBMs and is used where a union naturally appears, e.g. for the
set of zones stored per discrete state in the passed list and for reporting
the clock valuations that witness a property violation.

Storage
-------
The raw-bound matrices of the member zones are kept stacked row-wise in one
preallocated numpy buffer that grows by doubling, so the passed-list
inclusion check (the hottest operation of the reachability engine) is a
single vectorised comparison against all stored zones at once, and inserting
``N`` zones performs only ``O(N)`` total row copies (the seed implementation
re-stacked the whole array on every insert, i.e. ``O(N^2)``).  The
``stack_copies`` counter records the row copies actually performed; the test
suite uses it to pin down the amortised bound.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.dbm import DBM
from repro.util.errors import ModelError

__all__ = ["Federation"]

_MIN_CAPACITY = 4

#: element budget for a single broadcast comparison intermediate (~4M bools);
#: larger batched coverage checks are chunked along the candidate axis
_COMPARE_BUDGET = 1 << 22


class Federation:
    """A finite, redundancy-reduced union of :class:`~repro.core.dbm.DBM` zones."""

    __slots__ = ("dim", "_zones", "_buf", "_n", "stack_copies")

    def __init__(self, dim: int, zones: Iterable[DBM] = ()):
        self.dim = dim
        self._zones: list[DBM] = []
        #: row-stacked raw matrices of the member zones; rows ``[0:_n]`` valid
        self._buf: np.ndarray = np.empty((0, dim * dim), dtype=np.int64)
        self._n: int = 0
        #: total member-zone rows copied while growing/compacting the stack
        self.stack_copies: int = 0
        self.add_many(zones)

    # -- collection protocol ---------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[DBM]:
        return iter(self._zones)

    def __bool__(self) -> bool:
        return self._n > 0

    @property
    def zones(self) -> tuple[DBM, ...]:
        """The member zones (read-only view)."""
        return tuple(self._zones)

    # -- mutation -----------------------------------------------------------------
    def add(self, zone: DBM) -> bool:
        """Add *zone* unless it is empty or already covered.

        Zones previously stored that are covered by the new zone are removed.
        Returns ``True`` when the federation actually grew (i.e. the zone was
        not redundant) -- this is exactly the check used by the passed list of
        the reachability engine.
        """
        if zone.dim != self.dim:
            raise ModelError("zone dimension does not match federation dimension")
        if zone.is_empty():
            return False
        candidate = zone.m
        if self._n:
            stack = self._buf[: self._n]
            # one batched pass against every stored zone: the sign of
            # (stored - candidate) decides both directions of the inclusion
            diff = stack - candidate
            if (diff >= 0).all(axis=1).any():
                return False  # covered by an existing zone
            self._evict_covered((diff <= 0).all(axis=1))
        self._append(zone, candidate)
        return True

    def add_uncovered(self, zone: DBM) -> None:
        """Append *zone*, which the caller knows is non-empty and not covered.

        The reachability engine establishes non-coverage with :meth:`covers`
        on the raw successor zone before paying for extrapolation (see
        ``Explorer._store``), so re-testing it here would be wasted work.
        Stored zones that the new zone covers are still evicted.
        """
        candidate = zone.m
        if self._n:
            stack = self._buf[: self._n]
            self._evict_covered((stack <= candidate).all(axis=1))
        self._append(zone, candidate)

    def add_many_uncovered(self, zones: "Sequence[DBM]") -> None:
        """Batched :meth:`add_uncovered` for a run of pre-screened zones.

        Semantically identical to calling ``add_uncovered`` on each zone in
        list order: the caller certifies (as for :meth:`add_uncovered`) that
        each zone was non-empty and not covered by any member present *at
        its turn* -- including the earlier zones of the batch.  Eviction is
        collapsed into one pass: previously stored members covered by any
        batch zone are dropped, and a batch zone covered by a *later* batch
        zone is dropped before insertion (exactly the members sequential
        adds would have evicted; relative order is preserved on both sides).

        Used by the block replay of the batched frontier engine, which
        screens candidates with :meth:`covers_many` + per-block bookkeeping
        and then flushes each target federation once.
        """
        if not zones:
            return
        if len(zones) == 1:
            self.add_uncovered(zones[0])
            return
        rows = np.stack([zone.m for zone in zones])  # (k, dim * dim)
        if self._n:
            stack = self._buf[: self._n]
            # chunk the (k, n, dim^2) broadcast like covers_many does, so a
            # large batch against a grown federation cannot spike memory
            chunk = max(1, _COMPARE_BUDGET // (self._n * rows.shape[1]))
            doomed_members = np.zeros(self._n, dtype=bool)
            for start in range(0, len(rows), chunk):
                block = rows[start : start + chunk]
                doomed_members |= (
                    (stack[None, :, :] <= block[:, None, :]).all(axis=2).any(axis=0)
                )
            self._evict_covered(doomed_members)
        # within the batch: zone i is evicted by any *later* zone that covers
        # it (earlier zones cannot cover later ones -- the caller screened)
        includes = (rows[:, None, :] <= rows[None, :, :]).all(axis=2)
        doomed = np.triu(includes, 1).any(axis=1)
        self._grow(self._n + int(len(zones) - doomed.sum()))
        for zone, dead in zip(zones, doomed):
            if not dead:
                self._append(zone, zone.m)

    def _evict_covered(self, covered: np.ndarray) -> None:
        """Drop the stored zones flagged in the boolean row mask *covered*."""
        if covered.any():
            keep = ~covered
            kept = int(keep.sum())
            self._buf[:kept] = self._buf[: self._n][keep]
            self.stack_copies += kept
            self._zones = [z for z, k in zip(self._zones, keep) if k]
            self._n = kept

    def _append(self, zone: DBM, candidate: np.ndarray) -> None:
        n = self._n
        if n == len(self._buf):
            self._grow(n + 1)
        self._buf[n] = candidate
        self._zones.append(zone)
        self._n = n + 1

    def add_many(self, zones: Iterable[DBM]) -> int:
        """Add every zone in *zones*; returns how many actually grew the union.

        Semantically identical to calling :meth:`add` in order, but reserves
        stack capacity for the whole batch up front.
        """
        zones = list(zones)
        if not zones:
            return 0
        if any(z.dim != self.dim for z in zones):
            raise ModelError("zone dimension does not match federation dimension")
        self._grow(self._n + len(zones))
        return sum(1 for zone in zones if self.add(zone))

    def _grow(self, needed: int) -> None:
        """Ensure stack capacity for *needed* rows (amortised doubling)."""
        capacity = len(self._buf)
        if needed <= capacity:
            return
        new_capacity = max(_MIN_CAPACITY, capacity * 2, needed)
        new_buf = np.empty((new_capacity, self.dim * self.dim), dtype=np.int64)
        if self._n:
            new_buf[: self._n] = self._buf[: self._n]
            self.stack_copies += self._n
        self._buf = new_buf

    # -- queries ----------------------------------------------------------------------
    def covers(self, zone: DBM) -> bool:
        """Return ``True`` if some member zone includes *zone* entirely.

        Note this is inclusion in a *single* member (the standard passed-list
        check), not inclusion in the union.
        """
        n = self._n
        if not n:
            return False
        if n == 1:  # the overwhelmingly common federation size
            return bool((zone.m <= self._buf[0]).all())
        return bool((zone.m <= self._buf[:n]).all(axis=1).any())

    def covers_many(self, stack: np.ndarray) -> np.ndarray:
        """Batched :meth:`covers` over a stack of candidate zones.

        ``stack`` holds one raw-bound matrix per candidate, either as a
        ``(k, dim, dim)`` stack (a :attr:`~repro.core.dbm.DBMStack.a` view)
        or already flattened to ``(k, dim * dim)``.  Returns a boolean mask:
        entry ``c`` is ``True`` when some *single* member zone includes
        candidate ``c`` entirely -- the passed-list check of the batched
        frontier exploration, one vectorised comparison for the whole block.

        The verdict only depends on the *set* of member zones, not on their
        insertion order: redundancy eviction removes a stored zone only when
        the evicting zone includes it, so anything the evicted zone covered
        stays covered.  For the same reason verdicts are monotone under
        later insertions (``True`` can never revert to ``False``): callers
        caching a mask across mutations may keep trusting positive entries
        and need only re-check negative ones against the zones stored since
        (see ``Explorer._expand_block``).
        """
        if not len(stack):
            return np.zeros(0, dtype=bool)
        flat = stack.reshape(len(stack), -1)
        if flat.shape[1] != self.dim * self.dim:
            raise ModelError("stack dimension does not match federation dimension")
        n = self._n
        if not n:
            return np.zeros(len(flat), dtype=bool)
        if n == 1:
            return (flat <= self._buf[0]).all(axis=1)
        members = self._buf[:n][None, :, :]
        count = len(flat)
        # the broadcast materialises a (count, n, dim^2) boolean intermediate;
        # chunk the candidate axis so a large federation times a large block
        # cannot spike transient memory (identical verdicts either way)
        chunk = max(1, _COMPARE_BUDGET // (n * flat.shape[1]))
        if count <= chunk:
            return (flat[:, None, :] <= members).all(axis=2).any(axis=1)
        out = np.empty(count, dtype=bool)
        for start in range(0, count, chunk):
            block = flat[start : start + chunk]
            out[start : start + chunk] = (
                (block[:, None, :] <= members).all(axis=2).any(axis=1)
            )
        return out

    def is_empty(self) -> bool:
        """True when the federation contains no zone."""
        return self._n == 0

    def intersects(self, zone: DBM) -> bool:
        """True when at least one member zone intersects *zone*."""
        return any(member.intersects(zone) for member in self._zones)

    def contains_point(self, point) -> bool:
        """True when some member zone contains the concrete valuation."""
        return any(member.contains_point(point) for member in self._zones)

    def upper_bound(self, clock: int) -> int:
        """Largest raw upper bound of *clock* over all member zones."""
        if not self._n:
            raise ModelError("empty federation has no bounds")
        return int(self._buf[: self._n, clock * self.dim].max())

    # -- invariants --------------------------------------------------------------------
    def check_consistent(self) -> None:
        """Raise ``AssertionError`` when zone list and stack disagree (tests)."""
        assert self._n == len(self._zones), "stack row count != zone count"
        assert self._n <= len(self._buf), "stack row count exceeds capacity"
        for row, zone in zip(self._buf[: self._n], self._zones):
            assert np.array_equal(row, zone.m), "stack row diverged from its zone"

    def __str__(self) -> str:
        return " U ".join(str(zone) for zone in self._zones) or "(empty)"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Federation(dim={self.dim}, size={len(self)})"
