"""Timed automaton templates: locations, edges and a fluent builder API.

A :class:`TimedAutomaton` is a *template* in UPPAAL terminology: it declares
local clocks, bounded integer variables and named constants, a set of
locations (one of which is initial) and a set of edges.  Templates are
instantiated inside a :class:`~repro.core.network.Network`, which prefixes
local entity names with the instance name and inlines constants.

The builder methods accept guards, invariants, synchronisations and updates
either as already-constructed objects or as strings in UPPAAL-like syntax::

    rad = TimedAutomaton("RAD")
    rad.add_clock("x")
    rad.add_constant("AV", 9091)
    rad.add_location("idle", initial=True)
    rad.add_location("adjust_volume", invariant="x <= AV")
    rad.add_edge("idle", "adjust_volume",
                 guard="setvolume > 0", sync="hurry!",
                 updates="setvolume--", resets="x")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.core import expressions as ex
from repro.core.declarations import Clock, Constant, IntVariable
from repro.core.guards import (
    TRUE_GUARD,
    TRUE_INVARIANT,
    Guard,
    Invariant,
    compile_guard,
    compile_invariant,
)
from repro.util.errors import ModelError
from repro.util.intervals import IntInterval
from repro.util.naming import check_identifier

__all__ = ["Location", "Sync", "Edge", "TimedAutomaton"]


@dataclass(frozen=True)
class Location:
    """A control location of a timed automaton.

    ``urgent`` locations forbid the passage of time; ``committed`` locations
    additionally require the next transition in the whole network to involve
    an automaton that currently resides in a committed location (UPPAAL
    semantics; the paper's observer automaton uses a committed ``seen``
    location).
    """

    name: str
    invariant: Invariant = TRUE_INVARIANT
    urgent: bool = False
    committed: bool = False

    def __post_init__(self):
        check_identifier(self.name, "location")
        if self.urgent and self.committed:
            raise ModelError(f"location {self.name!r} cannot be both urgent and committed")
        if self.committed and not self.invariant.is_trivially_true:
            raise ModelError(f"committed location {self.name!r} may not carry an invariant")

    def __str__(self) -> str:
        flags = "".join(
            flag
            for flag, active in (("(urgent)", self.urgent), ("(committed)", self.committed))
            if active
        )
        inv = "" if self.invariant.is_trivially_true else f" inv: {self.invariant}"
        return f"{self.name}{flags}{inv}"


@dataclass(frozen=True)
class Sync:
    """A synchronisation label: channel name plus direction ('!' or '?')."""

    channel: str
    direction: str

    def __post_init__(self):
        if self.direction not in ("!", "?"):
            raise ModelError(f"sync direction must be '!' or '?', got {self.direction!r}")
        check_identifier(self.channel, "channel")

    @property
    def is_send(self) -> bool:
        return self.direction == "!"

    @property
    def is_receive(self) -> bool:
        return self.direction == "?"

    @classmethod
    def parse(cls, text: "str | Sync | None") -> "Sync | None":
        """Parse ``"channel!"`` / ``"channel?"`` strings (``None`` passes through)."""
        if text is None or isinstance(text, Sync):
            return text
        text = text.strip()
        if not text:
            return None
        if text[-1] not in "!?":
            raise ModelError(f"synchronisation {text!r} must end in '!' or '?'")
        return cls(text[:-1], text[-1])

    def __str__(self) -> str:
        return f"{self.channel}{self.direction}"


@dataclass(frozen=True)
class Edge:
    """A discrete transition between two locations of one automaton."""

    source: str
    target: str
    guard: Guard = TRUE_GUARD
    sync: Sync | None = None
    updates: tuple[ex.Assignment, ...] = ()
    resets: tuple[tuple[str, ex.Expr], ...] = ()

    def __str__(self) -> str:
        parts = [f"{self.source} -> {self.target}"]
        if not self.guard.is_trivially_true:
            parts.append(f"[{self.guard}]")
        if self.sync is not None:
            parts.append(str(self.sync))
        actions = [str(u) for u in self.updates] + [
            f"{clock} = {value}" for clock, value in self.resets
        ]
        if actions:
            parts.append("{" + ", ".join(actions) + "}")
        return " ".join(parts)


class TimedAutomaton:
    """A timed automaton template with a fluent builder API."""

    def __init__(self, name: str):
        check_identifier(name, "automaton")
        self.name = name
        self.clocks: dict[str, Clock] = {}
        self.variables: dict[str, IntVariable] = {}
        self.constants: dict[str, Constant] = {}
        self.locations: dict[str, Location] = {}
        self.initial_location: str | None = None
        self.edges: list[Edge] = []

    # -- declarations --------------------------------------------------------
    def add_clock(self, name: str) -> Clock:
        """Declare a local clock."""
        clock = Clock(name)
        self._check_fresh(name)
        self.clocks[name] = clock
        return clock

    def add_variable(
        self,
        name: str,
        initial: int = 0,
        lo: int | None = None,
        hi: int | None = None,
    ) -> IntVariable:
        """Declare a local bounded integer variable."""
        if lo is None and hi is None:
            domain = IntInterval(-32768, 32767)
        else:
            domain = IntInterval(lo if lo is not None else 0, hi if hi is not None else 32767)
        variable = IntVariable(name, initial, domain)
        self._check_fresh(name)
        self.variables[name] = variable
        return variable

    def add_constant(self, name: str, value: int) -> Constant:
        """Declare a local named integer constant (inlined at instantiation)."""
        constant = Constant(name, int(value))
        self._check_fresh(name)
        self.constants[name] = constant
        return constant

    def _check_fresh(self, name: str) -> None:
        for table, kind in (
            (self.clocks, "clock"),
            (self.variables, "variable"),
            (self.constants, "constant"),
        ):
            if name in table:
                raise ModelError(f"name {name!r} already declared as a {kind} in {self.name}")

    # -- locations -----------------------------------------------------------
    def add_location(
        self,
        name: str,
        invariant: "str | Invariant | None" = None,
        urgent: bool = False,
        committed: bool = False,
        initial: bool = False,
    ) -> Location:
        """Add a location; ``invariant`` may be a string over local names."""
        if name in self.locations:
            raise ModelError(f"location {name!r} already exists in {self.name}")
        location = Location(
            name,
            invariant=compile_invariant(invariant, self.clocks),
            urgent=urgent,
            committed=committed,
        )
        self.locations[name] = location
        if initial:
            if self.initial_location is not None:
                raise ModelError(
                    f"automaton {self.name} already has initial location {self.initial_location!r}"
                )
            self.initial_location = name
        return location

    # -- edges -----------------------------------------------------------------
    def add_edge(
        self,
        source: str,
        target: str,
        guard: "str | Guard | None" = None,
        sync: "str | Sync | None" = None,
        updates: "str | Sequence[ex.Assignment] | None" = None,
        resets: "str | Sequence | Mapping | None" = None,
    ) -> Edge:
        """Add an edge.

        * ``guard`` — string / :class:`Guard`; clock names are resolved against
          the local clock declarations.
        * ``sync`` — ``"channel!"`` or ``"channel?"``.
        * ``updates`` — comma-separated update string or list of assignments.
        * ``resets`` — clock resets: a clock name, a comma separated string of
          clock names (``"x, y"``), a mapping ``{"x": 0}``, or a sequence of
          ``(clock, value)`` pairs; values may be integers or expressions.
        """
        for loc in (source, target):
            if loc not in self.locations:
                raise ModelError(f"unknown location {loc!r} in edge of {self.name}")
        edge = Edge(
            source=source,
            target=target,
            guard=compile_guard(guard, self.clocks),
            sync=Sync.parse(sync),
            updates=self._parse_updates(updates),
            resets=self._parse_resets(resets),
        )
        self.edges.append(edge)
        return edge

    def _parse_updates(self, updates) -> tuple[ex.Assignment, ...]:
        if updates is None:
            return ()
        if isinstance(updates, str):
            return tuple(ex.parse_updates(updates))
        return tuple(updates)

    def _parse_resets(self, resets) -> tuple[tuple[str, ex.Expr], ...]:
        if resets is None:
            return ()
        if isinstance(resets, str):
            names = [part.strip() for part in resets.split(",") if part.strip()]
            parsed: list[tuple[str, ex.Expr]] = []
            for name in names:
                if "=" in name:
                    clock, _, value = name.partition("=")
                    parsed.append((clock.strip(), ex.as_expr(value.strip())))
                else:
                    parsed.append((name, ex.IntConst(0)))
            items: Iterable = parsed
        elif isinstance(resets, Mapping):
            items = resets.items()
        else:
            items = resets
        out: list[tuple[str, ex.Expr]] = []
        for item in items:
            if isinstance(item, str):
                clock, value = item, 0
            else:
                clock, value = item
            if clock not in self.clocks:
                raise ModelError(f"reset of unknown clock {clock!r} in {self.name}")
            out.append((clock, ex.as_expr(value)))
        return tuple(out)

    # -- queries -------------------------------------------------------------
    def outgoing(self, location: str) -> list[Edge]:
        """Edges leaving *location*."""
        return [edge for edge in self.edges if edge.source == location]

    def location_names(self) -> list[str]:
        return list(self.locations)

    def validate(self) -> None:
        """Check structural well-formedness (initial location, name references)."""
        if self.initial_location is None:
            raise ModelError(f"automaton {self.name} has no initial location")
        known_names = set(self.clocks) | set(self.variables) | set(self.constants)
        for edge in self.edges:
            for clock, _value in edge.resets:
                if clock not in self.clocks:
                    raise ModelError(f"{self.name}: reset of unknown clock {clock!r}")
            for constraint in edge.guard.clock_constraints:
                if constraint.clock not in self.clocks or (
                    constraint.other is not None and constraint.other not in self.clocks
                ):
                    # the constraint may reference a global clock; defer to network validation
                    continue
        for location in self.locations.values():
            for constraint in location.invariant.constraints:
                if constraint.clock not in self.clocks:
                    continue  # may be global; checked at network level
        # local sanity: local names must not collide with nothing else here
        del known_names

    def __str__(self) -> str:
        return (
            f"TimedAutomaton({self.name}: {len(self.locations)} locations, "
            f"{len(self.edges)} edges, {len(self.clocks)} clocks)"
        )

    __repr__ = __str__
