"""Symmetry reduction: verified replication automorphisms of a network.

Architectures with replicated load (``k`` identical scenarios, each on its
own dedicated processor) induce an automorphism group on the compiled
network: permuting the replicas maps runs onto runs, so the exploration only
needs one representative per orbit of discrete states.  This module holds
the *network-level* half of the reduction:

* :func:`isomorphic_templates` -- the structural check that two automaton
  templates are identical up to a name substitution.  Detection
  (:mod:`repro.arch.symmetry`) *proposes* clone units from the architecture
  description; this check *disposes*: an orbit is only attached to the
  compiled network after every member verified isomorphic to the first, so
  soundness never rests on generator naming conventions.
* :class:`SymmetrySpec` -- the verified orbits with their index-level
  footprints, and the canonicalisation map the explorer applies to every
  discrete state before passed/waiting lookup.  Canonicalisation sorts the
  units of each orbit by their discrete signature (stable, so states that
  are already canonical pass through untouched) and applies the induced
  permutation to the location vector, the variable vector and -- via
  :meth:`repro.core.dbm.DBM.permute` -- the zone.

Soundness: the attached permutations are verified automorphisms, so a state
and its canonical representative are related by a run-preserving bijection
of the whole transition system; reachability of any replica-symmetric
property (in particular the observed scenario's WCRT, whose observer is
never part of an orbit) is invariant under the folding.  The reduction is
disabled when traces are recorded, because a canonical trace is not a
genuine run of the unfolded network (``docs/reductions.md``).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.automaton import TimedAutomaton
from repro.util.errors import ModelError

__all__ = ["SymmetryUnit", "SymmetrySpec", "isomorphic_templates"]


@dataclass(frozen=True)
class SymmetryUnit:
    """The index-level footprint of one replicated architecture unit.

    The tuples of the units of one orbit are aligned positionally: entry
    ``m`` of one unit's ``instances``/``variables``/``clocks`` corresponds
    to entry ``m`` of every other unit's, under the verified isomorphism.
    """

    #: compiled instance indices belonging to the unit
    instances: tuple[int, ...]
    #: global variable-vector indices owned by the unit
    variables: tuple[int, ...]
    #: DBM clock indices owned by the unit
    clocks: tuple[int, ...]


class SymmetrySpec:
    """Verified replication symmetry of one compiled network."""

    def __init__(self, dim: int, orbits: Sequence[Sequence[SymmetryUnit]]):
        self.dim = dim
        self.orbits: tuple[tuple[SymmetryUnit, ...], ...] = tuple(
            tuple(units) for units in orbits
        )
        seen_instances: set[int] = set()
        seen_variables: set[int] = set()
        seen_clocks: set[int] = set()
        for units in self.orbits:
            if len(units) < 2:
                raise ModelError("a symmetry orbit needs at least two units")
            shape = (len(units[0].instances), len(units[0].variables), len(units[0].clocks))
            for unit in units:
                if (len(unit.instances), len(unit.variables), len(unit.clocks)) != shape:
                    raise ModelError("symmetry orbit units must have identical shapes")
                for pool, values, kind in (
                    (seen_instances, unit.instances, "instance"),
                    (seen_variables, unit.variables, "variable"),
                    (seen_clocks, unit.clocks, "clock"),
                ):
                    for value in values:
                        if value in pool:
                            raise ModelError(
                                f"symmetry units must be disjoint ({kind} {value} repeated)"
                            )
                        pool.add(value)
                if any(c <= 0 or c >= dim for c in unit.clocks):
                    raise ModelError("symmetry unit clock index out of range")
        #: canonicalisation memo per packed discrete key; bounded by the
        #: number of distinct discrete states of the exploration
        self._memo: dict[
            bytes, tuple[tuple[int, ...], tuple[int, ...], tuple[int, ...] | None]
        ] = {}

    def canonicalize(
        self,
        locations: tuple[int, ...],
        variables: tuple[int, ...],
        dkey: bytes | None = None,
    ) -> tuple[tuple[int, ...], tuple[int, ...], tuple[int, ...] | None]:
        """The orbit-canonical representative of a discrete state.

        Returns ``(locations, variables, clock_perm)``; ``clock_perm`` is
        ``None`` when the state is already canonical (the common case), else
        the permutation to feed :meth:`repro.core.dbm.DBM.permute` so the
        zone follows its discrete state onto the representative.  Memoised
        per packed discrete key -- the map is a pure function of the
        discrete state.
        """
        key = dkey if dkey is not None else array("q", locations + variables).tobytes()
        cached = self._memo.get(key)
        if cached is None:
            cached = self._canonicalize(locations, variables)
            self._memo[key] = cached
        return cached

    def _canonicalize(
        self, locations: tuple[int, ...], variables: tuple[int, ...]
    ) -> tuple[tuple[int, ...], tuple[int, ...], tuple[int, ...] | None]:
        new_locations: list[int] | None = None
        new_variables: list[int] | None = None
        perm: list[int] | None = None
        for units in self.orbits:
            signatures = [
                (
                    tuple(locations[i] for i in unit.instances),
                    tuple(variables[v] for v in unit.variables),
                )
                for unit in units
            ]
            order = sorted(range(len(units)), key=signatures.__getitem__)
            if order == list(range(len(units))):
                continue
            if new_locations is None:
                new_locations = list(locations)
                new_variables = list(variables)
                perm = list(range(self.dim))
            # the unit in canonical slot k takes the state of the unit
            # ranked k by discrete signature (stable sort: discretely equal
            # units keep their relative order)
            for slot, src in enumerate(order):
                target, source = units[slot], units[src]
                for a, b in zip(target.instances, source.instances):
                    new_locations[a] = locations[b]
                for a, b in zip(target.variables, source.variables):
                    new_variables[a] = variables[b]
                for a, b in zip(target.clocks, source.clocks):
                    perm[a] = b
        if new_locations is None:
            return (locations, variables, None)
        return (tuple(new_locations), tuple(new_variables), tuple(perm))


def isomorphic_templates(
    a: TimedAutomaton, b: TimedAutomaton, rename: Mapping[str, str]
) -> bool:
    """Structural equality of two automaton templates under a renaming.

    *rename* maps every name of *a* that differs in *b* -- typically the
    global variable, channel and location names that embed a replica's
    identity; template-local names are expected to coincide.  Declaration
    *order* must match too: the compiled index footprints of the units are
    aligned positionally, so a set-equal but reordered clone would break the
    induced index bijection.
    """

    def r(name: str) -> str:
        return rename.get(name, name)

    if [r(n) for n in a.clocks] != list(b.clocks):
        return False
    if [r(n) for n in a.variables] != list(b.variables):
        return False
    for var_a, var_b in zip(a.variables.values(), b.variables.values()):
        if (var_a.initial, var_a.domain) != (var_b.initial, var_b.domain):
            return False
    if {r(n): c.value for n, c in a.constants.items()} != {
        n: c.value for n, c in b.constants.items()
    }:
        return False
    if len(a.locations) != len(b.locations) or len(a.edges) != len(b.edges):
        return False
    if r(a.initial_location) != b.initial_location:
        return False
    for (name_a, loc_a), (name_b, loc_b) in zip(a.locations.items(), b.locations.items()):
        if r(name_a) != name_b:
            return False
        if loc_a.urgent != loc_b.urgent or loc_a.committed != loc_b.committed:
            return False
        if loc_a.invariant.rename(rename) != loc_b.invariant:
            return False
    for edge_a, edge_b in zip(a.edges, b.edges):
        if r(edge_a.source) != edge_b.source or r(edge_a.target) != edge_b.target:
            return False
        if edge_a.guard.rename(rename) != edge_b.guard:
            return False
        if (edge_a.sync is None) != (edge_b.sync is None):
            return False
        if edge_a.sync is not None and (
            r(edge_a.sync.channel) != edge_b.sync.channel
            or edge_a.sync.direction != edge_b.sync.direction
        ):
            return False
        if tuple(u.rename(rename) for u in edge_a.updates) != tuple(edge_b.updates):
            return False
        if tuple((r(c), v.rename(rename)) for c, v in edge_a.resets) != tuple(
            (c, v) for c, v in edge_b.resets
        ):
            return False
    return True
