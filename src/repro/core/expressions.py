"""Integer/boolean expression language used in guards, invariants and updates.

The expression language is a small, UPPAAL-flavoured subset of C:

* integer expressions: literals, variable references, unary ``-``/``+``,
  ``* / %``, ``+ -``, and the ternary conditional ``cond ? a : b``;
* boolean expressions: ``true``/``false``, comparisons
  (``< <= == != >= >``), ``!``, ``&&``, ``||``;
* update statements: ``x = e``, ``x += e``, ``x -= e``, ``x++``, ``x--``,
  several of them separated by commas.

Expressions are represented as a small immutable AST.  Two evaluation
strategies exist:

* :meth:`Expr.evaluate` interprets the tree against a mapping from variable
  names to integers (simple, used in tests and error reporting);
* :func:`compile_int_expr` / :func:`compile_bool_expr` generate a Python
  closure over an *indexed* state vector which is considerably faster and is
  what the model checker uses in its inner loop.

The module also provides :func:`parse_expression`, :func:`parse_updates`
and interval analysis (:meth:`Expr.bounds`) which is used to derive clock
extrapolation constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro.util.errors import ModelError, ParseError
from repro.util.intervals import IntInterval

__all__ = [
    "Expr",
    "IntConst",
    "BoolConst",
    "VarRef",
    "Unary",
    "Binary",
    "Compare",
    "Logical",
    "Not",
    "Conditional",
    "Assignment",
    "parse_expression",
    "parse_updates",
    "compile_int_expr",
    "compile_bool_expr",
    "compile_updates",
    "substitute",
    "const",
    "var",
]

# Comparison operators and their Python implementations.
_CMP_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    ">=": lambda a, b: a >= b,
    ">": lambda a, b: a > b,
}

_ARITH_OPS = {"+", "-", "*", "/", "%"}


class Expr:
    """Base class of all expression nodes.

    Nodes are immutable and hashable; equality is structural.
    """

    #: ``True`` for nodes whose value is boolean, ``False`` for integers.
    is_boolean: bool = False

    # -- evaluation ----------------------------------------------------------
    def evaluate(self, env: Mapping[str, int]):
        """Evaluate the expression against a name -> int mapping."""
        raise NotImplementedError

    # -- analysis ------------------------------------------------------------
    def variables(self) -> frozenset[str]:
        """Return the set of variable names referenced by the expression."""
        raise NotImplementedError

    def bounds(self, domains: Mapping[str, IntInterval]) -> IntInterval:
        """Conservative interval of possible values given variable domains."""
        raise NotImplementedError

    def rename(self, mapping: Mapping[str, str]) -> "Expr":
        """Return a copy with variable names substituted via *mapping*."""
        raise NotImplementedError

    # -- code generation ------------------------------------------------------
    def to_python(self, index: Mapping[str, int], state_name: str = "v") -> str:
        """Emit a Python expression string reading variables from ``v[i]``."""
        raise NotImplementedError

    # -- misc ------------------------------------------------------------------
    def __str__(self) -> str:  # pragma: no cover - overridden everywhere
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self})"


@dataclass(frozen=True)
class IntConst(Expr):
    """An integer literal."""

    value: int

    def evaluate(self, env):
        return self.value

    def variables(self):
        return frozenset()

    def bounds(self, domains):
        return IntInterval(self.value, self.value)

    def rename(self, mapping):
        return self

    def to_python(self, index, state_name="v"):
        return repr(int(self.value))

    def __str__(self):
        return str(self.value)


@dataclass(frozen=True)
class BoolConst(Expr):
    """A boolean literal (``true`` / ``false``)."""

    value: bool
    is_boolean = True

    def evaluate(self, env):
        return bool(self.value)

    def variables(self):
        return frozenset()

    def bounds(self, domains):
        return IntInterval(int(self.value), int(self.value))

    def rename(self, mapping):
        return self

    def to_python(self, index, state_name="v"):
        return "True" if self.value else "False"

    def __str__(self):
        return "true" if self.value else "false"


@dataclass(frozen=True)
class VarRef(Expr):
    """Reference to an integer variable (or constant parameter) by name."""

    name: str

    def evaluate(self, env):
        try:
            return env[self.name]
        except KeyError as exc:
            raise ModelError(f"unknown variable {self.name!r} in expression") from exc

    def variables(self):
        return frozenset({self.name})

    def bounds(self, domains):
        try:
            return domains[self.name]
        except KeyError as exc:
            raise ModelError(
                f"no declared domain for variable {self.name!r}"
            ) from exc

    def rename(self, mapping):
        return VarRef(mapping.get(self.name, self.name))

    def to_python(self, index, state_name="v"):
        try:
            return f"{state_name}[{index[self.name]}]"
        except KeyError as exc:
            raise ModelError(f"variable {self.name!r} not in network index") from exc

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class Unary(Expr):
    """Unary minus / plus on an integer expression."""

    op: str
    operand: Expr

    def __post_init__(self):
        if self.op not in ("-", "+"):
            raise ModelError(f"unsupported unary operator {self.op!r}")

    def evaluate(self, env):
        value = self.operand.evaluate(env)
        return -value if self.op == "-" else +value

    def variables(self):
        return self.operand.variables()

    def bounds(self, domains):
        inner = self.operand.bounds(domains)
        return -inner if self.op == "-" else inner

    def rename(self, mapping):
        return Unary(self.op, self.operand.rename(mapping))

    def to_python(self, index, state_name="v"):
        return f"({self.op}{self.operand.to_python(index, state_name)})"

    def __str__(self):
        return f"{self.op}{self.operand}"


@dataclass(frozen=True)
class Binary(Expr):
    """Integer arithmetic: ``+ - * / %`` (``/`` is C-style truncating)."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in _ARITH_OPS:
            raise ModelError(f"unsupported arithmetic operator {self.op!r}")

    def evaluate(self, env):
        a = self.left.evaluate(env)
        b = self.right.evaluate(env)
        if self.op == "+":
            return a + b
        if self.op == "-":
            return a - b
        if self.op == "*":
            return a * b
        if self.op == "/":
            if b == 0:
                raise ModelError("division by zero in expression")
            return int(a / b)  # C semantics: truncate towards zero
        if b == 0:
            raise ModelError("modulo by zero in expression")
        return a - int(a / b) * b  # C semantics for %

    def variables(self):
        return self.left.variables() | self.right.variables()

    def bounds(self, domains):
        a = self.left.bounds(domains)
        b = self.right.bounds(domains)
        if self.op == "+":
            return a + b
        if self.op == "-":
            return a - b
        if self.op == "*":
            return a * b
        if self.op == "/":
            return a.floordiv(b)
        # conservative bound on a % b
        magnitude = max(abs(b.lo), abs(b.hi))
        return IntInterval(-magnitude, magnitude)

    def rename(self, mapping):
        return Binary(self.op, self.left.rename(mapping), self.right.rename(mapping))

    def to_python(self, index, state_name="v"):
        a = self.left.to_python(index, state_name)
        b = self.right.to_python(index, state_name)
        if self.op == "/":
            return f"_c_div({a}, {b})"
        if self.op == "%":
            return f"_c_mod({a}, {b})"
        return f"({a} {self.op} {b})"

    def __str__(self):
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Compare(Expr):
    """Comparison of two integer expressions; value is boolean."""

    op: str
    left: Expr
    right: Expr
    is_boolean = True

    def __post_init__(self):
        if self.op not in _CMP_OPS:
            raise ModelError(f"unsupported comparison operator {self.op!r}")

    def evaluate(self, env):
        return _CMP_OPS[self.op](self.left.evaluate(env), self.right.evaluate(env))

    def variables(self):
        return self.left.variables() | self.right.variables()

    def bounds(self, domains):
        return IntInterval(0, 1)

    def rename(self, mapping):
        return Compare(self.op, self.left.rename(mapping), self.right.rename(mapping))

    def to_python(self, index, state_name="v"):
        a = self.left.to_python(index, state_name)
        b = self.right.to_python(index, state_name)
        return f"({a} {self.op} {b})"

    def __str__(self):
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class Logical(Expr):
    """Boolean conjunction / disjunction."""

    op: str  # "&&" or "||"
    left: Expr
    right: Expr
    is_boolean = True

    def __post_init__(self):
        if self.op not in ("&&", "||"):
            raise ModelError(f"unsupported logical operator {self.op!r}")

    def evaluate(self, env):
        if self.op == "&&":
            return bool(self.left.evaluate(env)) and bool(self.right.evaluate(env))
        return bool(self.left.evaluate(env)) or bool(self.right.evaluate(env))

    def variables(self):
        return self.left.variables() | self.right.variables()

    def bounds(self, domains):
        return IntInterval(0, 1)

    def rename(self, mapping):
        return Logical(self.op, self.left.rename(mapping), self.right.rename(mapping))

    def to_python(self, index, state_name="v"):
        py_op = "and" if self.op == "&&" else "or"
        a = self.left.to_python(index, state_name)
        b = self.right.to_python(index, state_name)
        return f"({a} {py_op} {b})"

    def __str__(self):
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Not(Expr):
    """Boolean negation."""

    operand: Expr
    is_boolean = True

    def evaluate(self, env):
        return not bool(self.operand.evaluate(env))

    def variables(self):
        return self.operand.variables()

    def bounds(self, domains):
        return IntInterval(0, 1)

    def rename(self, mapping):
        return Not(self.operand.rename(mapping))

    def to_python(self, index, state_name="v"):
        return f"(not {self.operand.to_python(index, state_name)})"

    def __str__(self):
        return f"!({self.operand})"


@dataclass(frozen=True)
class Conditional(Expr):
    """C-style ternary conditional ``cond ? then : otherwise``."""

    condition: Expr
    then: Expr
    otherwise: Expr

    def evaluate(self, env):
        if self.condition.evaluate(env):
            return self.then.evaluate(env)
        return self.otherwise.evaluate(env)

    def variables(self):
        return (
            self.condition.variables()
            | self.then.variables()
            | self.otherwise.variables()
        )

    def bounds(self, domains):
        return self.then.bounds(domains).union(self.otherwise.bounds(domains))

    def rename(self, mapping):
        return Conditional(
            self.condition.rename(mapping),
            self.then.rename(mapping),
            self.otherwise.rename(mapping),
        )

    def to_python(self, index, state_name="v"):
        c = self.condition.to_python(index, state_name)
        a = self.then.to_python(index, state_name)
        b = self.otherwise.to_python(index, state_name)
        return f"({a} if {c} else {b})"

    def __str__(self):
        return f"({self.condition} ? {self.then} : {self.otherwise})"


@dataclass(frozen=True)
class Assignment:
    """An update statement ``target = expr`` on an integer variable."""

    target: str
    expr: Expr

    def apply(self, env: dict) -> None:
        """Apply the assignment in place to a mutable mapping."""
        env[self.target] = int(self.expr.evaluate(env))

    def variables(self) -> frozenset[str]:
        return self.expr.variables() | {self.target}

    def rename(self, mapping: Mapping[str, str]) -> "Assignment":
        return Assignment(mapping.get(self.target, self.target), self.expr.rename(mapping))

    def __str__(self) -> str:
        return f"{self.target} = {self.expr}"

    def __repr__(self) -> str:
        return f"Assignment({self})"


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------

def const(value: int) -> IntConst:
    """Shorthand for :class:`IntConst`."""
    return IntConst(int(value))


def var(name: str) -> VarRef:
    """Shorthand for :class:`VarRef`."""
    return VarRef(name)


def as_expr(value: "Expr | int | str") -> Expr:
    """Coerce an int, string or Expr into an :class:`Expr`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return BoolConst(value)
    if isinstance(value, int):
        return IntConst(value)
    if isinstance(value, str):
        return parse_expression(value)
    raise ModelError(f"cannot interpret {value!r} as an expression")


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TWO_CHAR_TOKENS = ("<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "++", "--")
_ONE_CHAR_TOKENS = "+-*/%()<>!?:,="


@dataclass(frozen=True)
class _Token:
    kind: str  # "int", "ident", "op", "end"
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            tokens.append(_Token("int", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] in "._"):
                j += 1
            tokens.append(_Token("ident", text[i:j], i))
            i = j
            continue
        two = text[i : i + 2]
        if two in _TWO_CHAR_TOKENS:
            tokens.append(_Token("op", two, i))
            i += 2
            continue
        if ch in _ONE_CHAR_TOKENS:
            tokens.append(_Token("op", ch, i))
            i += 1
            continue
        raise ParseError(f"unexpected character {ch!r}", text, i)
    tokens.append(_Token("end", "", n))
    return tokens


class _Parser:
    """Recursive-descent parser for expressions and update lists."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0

    # -- token helpers -------------------------------------------------------
    def peek(self) -> _Token:
        return self.tokens[self.pos]

    def next(self) -> _Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, text: str) -> _Token:
        token = self.next()
        if token.text != text:
            raise ParseError(f"expected {text!r}, found {token.text!r}", self.text, token.position)
        return token

    def at_end(self) -> bool:
        return self.peek().kind == "end"

    # -- grammar --------------------------------------------------------------
    # expression := ternary
    # ternary    := or ("?" expression ":" expression)?
    # or         := and ("||" and)*
    # and        := cmp ("&&" cmp)*
    # cmp        := sum (("<"|"<="|"=="|"!="|">="|">") sum)?
    # sum        := term (("+"|"-") term)*
    # term       := unary (("*"|"/"|"%") unary)*
    # unary      := ("-"|"+"|"!") unary | atom
    # atom       := int | ident | "true" | "false" | "(" expression ")"

    def parse_expression(self) -> Expr:
        condition = self.parse_or()
        if self.peek().text == "?":
            self.next()
            then = self.parse_expression()
            self.expect(":")
            otherwise = self.parse_expression()
            return Conditional(condition, then, otherwise)
        return condition

    def parse_or(self) -> Expr:
        node = self.parse_and()
        while self.peek().text == "||":
            self.next()
            node = Logical("||", node, self.parse_and())
        return node

    def parse_and(self) -> Expr:
        node = self.parse_cmp()
        while self.peek().text == "&&":
            self.next()
            node = Logical("&&", node, self.parse_cmp())
        return node

    def parse_cmp(self) -> Expr:
        node = self.parse_sum()
        if self.peek().text in _CMP_OPS:
            op = self.next().text
            right = self.parse_sum()
            return Compare(op, node, right)
        return node

    def parse_sum(self) -> Expr:
        node = self.parse_term()
        while self.peek().text in ("+", "-"):
            op = self.next().text
            node = Binary(op, node, self.parse_term())
        return node

    def parse_term(self) -> Expr:
        node = self.parse_unary()
        while self.peek().text in ("*", "/", "%"):
            op = self.next().text
            node = Binary(op, node, self.parse_unary())
        return node

    def parse_unary(self) -> Expr:
        token = self.peek()
        if token.text in ("-", "+"):
            self.next()
            return Unary(token.text, self.parse_unary())
        if token.text == "!":
            self.next()
            return Not(self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> Expr:
        token = self.next()
        if token.kind == "int":
            return IntConst(int(token.text))
        if token.kind == "ident":
            if token.text == "true":
                return BoolConst(True)
            if token.text == "false":
                return BoolConst(False)
            return VarRef(token.text)
        if token.text == "(":
            node = self.parse_expression()
            self.expect(")")
            return node
        raise ParseError(f"unexpected token {token.text!r}", self.text, token.position)

    # -- updates ---------------------------------------------------------------
    def parse_updates(self) -> list[Assignment]:
        updates: list[Assignment] = []
        while not self.at_end():
            updates.append(self.parse_update())
            if self.peek().text == ",":
                self.next()
                continue
            break
        if not self.at_end():
            token = self.peek()
            raise ParseError(f"unexpected token {token.text!r}", self.text, token.position)
        return updates

    def parse_update(self) -> Assignment:
        token = self.next()
        if token.kind != "ident":
            raise ParseError("update must start with a variable name", self.text, token.position)
        target = token.text
        op_token = self.next()
        if op_token.text == "=":
            return Assignment(target, self.parse_expression())
        if op_token.text == "+=":
            return Assignment(target, Binary("+", VarRef(target), self.parse_expression()))
        if op_token.text == "-=":
            return Assignment(target, Binary("-", VarRef(target), self.parse_expression()))
        if op_token.text == "++":
            return Assignment(target, Binary("+", VarRef(target), IntConst(1)))
        if op_token.text == "--":
            return Assignment(target, Binary("-", VarRef(target), IntConst(1)))
        raise ParseError(
            f"expected assignment operator after {target!r}, found {op_token.text!r}",
            self.text,
            op_token.position,
        )


def parse_expression(text: str) -> Expr:
    """Parse a guard/expression string into an :class:`Expr` tree."""
    parser = _Parser(text)
    node = parser.parse_expression()
    if not parser.at_end():
        token = parser.peek()
        raise ParseError(f"trailing input {token.text!r}", text, token.position)
    return node


def parse_updates(text: str) -> list[Assignment]:
    """Parse a comma-separated update list (``"a = 1, b++, c += d"``)."""
    if not text or not text.strip():
        return []
    return _Parser(text).parse_updates()


# ---------------------------------------------------------------------------
# Compilation to Python closures
# ---------------------------------------------------------------------------

def _c_div(a: int, b: int) -> int:
    if b == 0:
        raise ModelError("division by zero in expression")
    return int(a / b)


def _c_mod(a: int, b: int) -> int:
    if b == 0:
        raise ModelError("modulo by zero in expression")
    return a - int(a / b) * b


_COMPILE_GLOBALS = {
    "_c_div": _c_div,
    "_c_mod": _c_mod,
    "bool": bool,
    "list": list,
    "tuple": tuple,
    "__builtins__": {},
}


def substitute(expr: Expr, values: Mapping[str, int]) -> Expr:
    """Replace variable references that appear in *values* by integer literals.

    Used to inline named constants (UPPAAL ``const int``) when an automaton
    template is instantiated inside a network, so that constants do not take
    up space in the discrete state vector.
    """
    if isinstance(expr, (IntConst, BoolConst)):
        return expr
    if isinstance(expr, VarRef):
        if expr.name in values:
            return IntConst(int(values[expr.name]))
        return expr
    if isinstance(expr, Unary):
        return Unary(expr.op, substitute(expr.operand, values))
    if isinstance(expr, Binary):
        return Binary(expr.op, substitute(expr.left, values), substitute(expr.right, values))
    if isinstance(expr, Compare):
        return Compare(expr.op, substitute(expr.left, values), substitute(expr.right, values))
    if isinstance(expr, Logical):
        return Logical(expr.op, substitute(expr.left, values), substitute(expr.right, values))
    if isinstance(expr, Not):
        return Not(substitute(expr.operand, values))
    if isinstance(expr, Conditional):
        return Conditional(
            substitute(expr.condition, values),
            substitute(expr.then, values),
            substitute(expr.otherwise, values),
        )
    raise ModelError(f"cannot substitute into expression node {expr!r}")


def compile_int_expr(expr: Expr, index: Mapping[str, int]) -> Callable[[Sequence[int]], int]:
    """Compile an integer expression into ``f(state_vector) -> int``.

    ``index`` maps variable names to positions in the state vector.
    """
    source = f"lambda v: ({expr.to_python(index)})"
    return eval(source, dict(_COMPILE_GLOBALS))  # noqa: S307 - controlled codegen


def compile_bool_expr(expr: Expr, index: Mapping[str, int]) -> Callable[[Sequence[int]], bool]:
    """Compile a boolean expression into ``f(state_vector) -> bool``."""
    source = f"lambda v: bool({expr.to_python(index)})"
    return eval(source, dict(_COMPILE_GLOBALS))  # noqa: S307 - controlled codegen


def compile_updates(
    updates: Iterable[Assignment], index: Mapping[str, int]
) -> Callable[[Sequence[int]], tuple[int, ...]]:
    """Compile a sequence of updates into ``f(state_vector) -> new_vector``.

    Updates are applied left to right; later updates observe the effect of
    earlier ones (C semantics of a comma-separated update list in UPPAAL).
    """
    updates = list(updates)
    lines = ["def _apply(v):", "    v = list(v)"]
    for update in updates:
        if update.target not in index:
            raise ModelError(f"assignment to unknown variable {update.target!r}")
        lines.append(
            f"    v[{index[update.target]}] = {update.expr.to_python(index)}"
        )
    lines.append("    return tuple(v)")
    namespace: dict = dict(_COMPILE_GLOBALS)
    exec("\n".join(lines), namespace)  # noqa: S102 - controlled codegen
    return namespace["_apply"]
