"""Core timed-automata modelling and model-checking engine.

This package is a self-contained, UPPAAL-style analysis stack:

* :mod:`repro.core.dbm` / :mod:`repro.core.federation` — zone representation,
* :mod:`repro.core.expressions`, :mod:`repro.core.guards`,
  :mod:`repro.core.declarations`, :mod:`repro.core.automaton`,
  :mod:`repro.core.network` — the modelling language,
* :mod:`repro.core.successors` — the symbolic (zone-graph) semantics,
* :mod:`repro.core.reachability`, :mod:`repro.core.properties`,
  :mod:`repro.core.wcrt` — exploration, queries and worst-case response
  times,
* :mod:`repro.core.shard` — the forked multi-core exploration engine
  (bit-identical verdicts, statistics and witnesses).
"""

from repro.core.automaton import Edge, Location, Sync, TimedAutomaton
from repro.core.dbm import DBM, INFINITY_RAW, bound, bound_as_tuple
from repro.core.declarations import BINARY, BROADCAST, Channel, Clock, Constant, IntVariable
from repro.core.expressions import (
    Assignment,
    Expr,
    parse_expression,
    parse_updates,
)
from repro.core.federation import Federation
from repro.core.guards import ClockConstraint, Guard, Invariant, compile_guard, compile_invariant
from repro.core.network import CompiledNetwork, Network
from repro.core.properties import (
    AG,
    EF,
    And,
    ClockProp,
    DataProp,
    LocationProp,
    Not,
    Or,
    StateFormula,
    Sup,
    parse_atom,
)
from repro.core.reachability import (
    Explorer,
    ReachabilityResult,
    SearchOptions,
    SupResult,
    Trace,
    TraceStep,
)
from repro.core.shard import ShardedExplorer, select_explorer
from repro.core.statistics import ExplorationStatistics
from repro.core.successors import (
    SemanticsOptions,
    SuccessorGenerator,
    SymbolicState,
    TransitionLabel,
)
from repro.core.wcrt import WCRTResult, wcrt_binary_search, wcrt_sup

__all__ = [
    # modelling
    "TimedAutomaton", "Location", "Edge", "Sync",
    "Network", "CompiledNetwork",
    "Clock", "IntVariable", "Constant", "Channel", "BINARY", "BROADCAST",
    "Expr", "Assignment", "parse_expression", "parse_updates",
    "Guard", "Invariant", "ClockConstraint", "compile_guard", "compile_invariant",
    # zones
    "DBM", "Federation", "INFINITY_RAW", "bound", "bound_as_tuple",
    # semantics + exploration
    "SemanticsOptions", "SuccessorGenerator", "SymbolicState", "TransitionLabel",
    "Explorer", "SearchOptions", "ReachabilityResult", "SupResult",
    "ShardedExplorer", "select_explorer",
    "Trace", "TraceStep", "ExplorationStatistics",
    # properties + WCRT
    "StateFormula", "LocationProp", "DataProp", "ClockProp", "And", "Or", "Not",
    "EF", "AG", "Sup", "parse_atom",
    "WCRTResult", "wcrt_sup", "wcrt_binary_search",
]
