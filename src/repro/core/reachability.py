"""Zone-graph exploration: the reachability engine behind every query.

The engine implements the standard UPPAAL forward exploration with a
*waiting* list of symbolic states still to be expanded and a *passed* list of
states already seen.  The passed list is indexed by the discrete part
(location vector + variable vector) and stores, per discrete state, a set of
maximal zones; a new symbolic state is discarded when its zone is included in
a stored zone (inclusion checking).

Search orders:

* ``"bfs"``  — breadth first (default; shortest counterexamples),
* ``"dfs"``  — depth first,
* ``"rdfs"`` — randomised depth first (successor order shuffled), the
  "structured testing" mode the paper uses to obtain lower bounds on the
  worst-case response times when the exact search does not terminate within
  the budget.

Budgets (``max_states``, ``max_seconds``) make the engine stop early and mark
the result as partial instead of raising, because partial exploration is a
legitimate analysis mode in the paper (Table 1 reports ``> x (df)`` /
``> x (rdf)`` entries obtained that way).
"""

from __future__ import annotations

import random
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.core.dbm import INFINITY_RAW, bound_as_tuple
from repro.core.federation import Federation
from repro.core.network import CompiledNetwork
from repro.core.properties import AG, EF, BoundFormula, Query, StateFormula, Sup, formula_visibility
from repro.core.reductions import ReductionConfig
from repro.core.statistics import ExplorationStatistics
from repro.core.successors import (
    SemanticsOptions,
    SuccessorGenerator,
    SymbolicState,
    TransitionLabel,
    pack_discrete,
)
from repro.util.errors import AnalysisError, ModelError

__all__ = [
    "SearchOptions",
    "ReachabilityResult",
    "SupResult",
    "Explorer",
    "Trace",
    "TraceStep",
]


@dataclass
class SearchOptions:
    """Options of the exploration itself (orthogonal to the semantics)."""

    #: "bfs", "dfs" or "rdfs"
    order: str = "bfs"
    #: stop after expanding this many symbolic states (None = unlimited)
    max_states: int | None = None
    #: stop after this much wall-clock time in seconds (None = unlimited)
    max_seconds: float | None = None
    #: absolute ``time.perf_counter`` instant to stop at (None = unlimited);
    #: combined with ``max_seconds`` by taking whichever comes first -- the
    #: hook through which a supervised sweep imposes one wall-clock deadline
    #: across generation, exploration and witness construction
    deadline: float | None = None
    #: seed of the random generator used by "rdfs"
    seed: int = 0
    #: discard successors whose zone is included in an already stored zone
    inclusion_checking: bool = True
    #: keep parent pointers so that witness/counterexample traces can be built
    record_traces: bool = True
    #: largest run of waiting states sharing a discrete key that the breadth-
    #: first engine pops as one block and pushes through the batched DBM
    #: kernels; 1 disables frontier batching (dfs/rdfs always run scalar,
    #: their pop order is incompatible with popping runs)
    block_size: int = 128
    #: which state-space reductions the engine may apply; accepts a
    #: :class:`ReductionConfig`, a spec string (``"all"``, ``"none"``, a
    #: comma list of canonical names), a dict of flags or ``None`` (all on);
    #: normalised to a :class:`ReductionConfig` by ``__post_init__``
    reductions: ReductionConfig | str | dict | None = None
    #: worker processes the sharded breadth-first engine may fork; 0 and 1
    #: run in-process.  Sharding requires bfs order with inclusion checking
    #: and ``os.fork`` -- :func:`repro.core.shard.select_explorer` falls back
    #: to the scalar/block engine otherwise (see ``docs/performance.md``)
    shard_workers: int = 0

    def __post_init__(self):
        if self.order not in ("bfs", "dfs", "rdfs"):
            raise ModelError(f"unknown search order {self.order!r}")
        if self.block_size < 1:
            raise ModelError("block_size must be at least 1")
        if self.shard_workers < 0:
            raise ModelError("shard_workers must be non-negative")
        self.reductions = ReductionConfig.parse(self.reductions)


@dataclass(frozen=True)
class TraceStep:
    """One step of a symbolic trace."""

    label: TransitionLabel | None
    state: SymbolicState


@dataclass(frozen=True)
class Trace:
    """A symbolic run from the initial state to a target state."""

    steps: tuple[TraceStep, ...]

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def final_state(self) -> SymbolicState:
        return self.steps[-1].state

    def format(self, network: CompiledNetwork) -> str:
        """Multi-line human-readable rendering of the trace."""
        lines = []
        for index, step in enumerate(self.steps):
            if step.label is not None:
                lines.append(f"  --[{step.label}]-->")
            lines.append(f"{index:4d}: {step.state.describe(network)}")
        return "\n".join(lines)


@dataclass
class ReachabilityResult:
    """Outcome of an ``E<>`` / ``A[]`` query."""

    query: Query
    #: True / False when the query was decided; None when the exploration was
    #: cut short by a budget before a decision was possible
    holds: bool | None
    #: witness trace (EF) or counterexample trace (AG), when available
    trace: Trace | None
    statistics: ExplorationStatistics

    @property
    def decided(self) -> bool:
        return self.holds is not None

    def __str__(self) -> str:
        verdict = {True: "satisfied", False: "violated", None: "undecided"}[self.holds]
        return f"{self.query}: {verdict} ({self.statistics})"


@dataclass
class SupResult:
    """Outcome of a :class:`~repro.core.properties.Sup` query."""

    query: Sup
    #: largest value of the clock over the matching reachable states, in model
    #: time units; None when no matching state was reached
    value: int | None
    #: True when the supremum is attained (a weak bound), False when it is a
    #: strict limit
    attained: bool
    #: True when the value is only a lower bound (budget exhausted or the
    #: bound hit the extrapolation ceiling)
    is_lower_bound: bool
    statistics: ExplorationStatistics
    #: trace to a state attaining the reported value (when recorded)
    trace: Trace | None = None

    def __str__(self) -> str:
        if self.value is None:
            return f"{self.query}: no matching state reached ({self.statistics})"
        prefix = ">" if self.is_lower_bound else ("=" if self.attained else "<")
        return f"{self.query}: {prefix} {self.value} ({self.statistics})"


class _UnrecordedParent:
    """Sentinel parent of nodes created with ``record_traces=False``.

    Distinguishes "this node is the search root" (parent ``None``, a
    one-step trace is correct) from "the ancestry was deliberately not
    recorded" -- building a trace through the sentinel raises instead of
    silently returning a partial chain.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "<unrecorded parent>"


_UNRECORDED = _UnrecordedParent()


class _SearchNode:
    """Internal: a stored symbolic state plus its parent pointer."""

    __slots__ = ("state", "parent", "label")

    def __init__(
        self,
        state: SymbolicState,
        parent: "_SearchNode | _UnrecordedParent | None",
        label: TransitionLabel | None,
    ):
        self.state = state
        self.parent = parent
        self.label = label

    def trace(self) -> Trace:
        steps: list[TraceStep] = []
        node: _SearchNode | _UnrecordedParent | None = self
        while node is not None:
            if node is _UNRECORDED:
                raise AnalysisError(
                    "cannot build a trace: the exploration ran with "
                    "record_traces=False, so parent pointers were not kept; "
                    "re-run with SearchOptions(record_traces=True)"
                )
            steps.append(TraceStep(node.label, node.state))
            node = node.parent
        steps.reverse()
        return Trace(tuple(steps))


class Explorer:
    """Forward zone-graph exploration over a compiled network."""

    def __init__(
        self,
        network: CompiledNetwork,
        semantics: SemanticsOptions | None = None,
        search: SearchOptions | None = None,
    ):
        self.network = network
        self.semantics = semantics or SemanticsOptions()
        self.search = search or SearchOptions()
        reductions = self.search.reductions
        # effective extrapolation: the reductions config upgrades "max" to
        # the per-clock LU grid, and recorded traces force the classical
        # grid back on (witness concretisation is specified against it);
        # "none" always stays "none" (docs/reductions.md, fallback table)
        mode = self.semantics.extrapolation
        if mode != "none":
            if self.search.record_traces:
                mode = "max" if mode == "lu" else mode
            elif reductions.lu_extrapolation:
                mode = "lu"
        if mode != self.semantics.extrapolation:
            self.semantics = replace(self.semantics, extrapolation=mode)
        self.generator = SuccessorGenerator(network, self.semantics)
        #: the verified replication symmetry in effect (None = folding
        #: inert): requires the config flag, a spec attached to the network
        #: and no trace recording -- a canonical trace is not a genuine run
        #: of the unfolded network
        self.symmetry = (
            network.symmetry
            if reductions.symmetry and not self.search.record_traces
            else None
        )
        self._lu_active = mode == "lu"
        # the ample-set reduction leans on inclusion checking for its
        # ignoring proviso ("covered successor => expand fully"); without a
        # coverage-checked passed list it stays off
        self._por = reductions.partial_order and self.search.inclusion_checking

    # ------------------------------------------------------------------ core loop
    def explore(
        self,
        visit: Callable[[SymbolicState, "_SearchNode"], bool] | None = None,
    ) -> ExplorationStatistics:
        """Run the exploration, calling *visit* on every new symbolic state.

        ``visit`` may return ``True`` to stop the search (goal found).  The
        returned statistics record why the exploration terminated.
        """
        options = self.search
        stats = ExplorationStatistics(search_order=options.order)
        stats.start_timer()
        rng = random.Random(options.seed)

        # the passed list is keyed by the *interned* discrete part (location
        # and variable vectors packed into one bytes object): bytes hash and
        # compare in C, unlike the nested int tuples they replace
        passed: dict[bytes, Federation] = {}
        waiting: deque[_SearchNode] = deque()
        record_traces = options.record_traces

        initial = self._canonical(self.generator.initial_state(), stats)
        root = _SearchNode(initial, None, None)
        self._store(passed, initial)
        stats.states_stored += 1
        waiting.append(root)
        stats.peak_waiting = 1

        if visit is not None and visit(initial, root):
            stats.termination = "goal"
            stats.stop_timer()
            return stats

        deadline = (
            time.perf_counter() + options.max_seconds if options.max_seconds is not None else None
        )
        if options.deadline is not None:
            deadline = (
                options.deadline if deadline is None
                else min(deadline, options.deadline)
            )
        max_states = options.max_states
        breadth_first = options.order == "bfs"
        randomised = options.order == "rdfs"
        generate = self.generator.successors
        # frontier blocking: breadth-first only (popping a run from the head
        # preserves the FIFO expansion order; dfs/rdfs pop from the tail and
        # would interleave differently), and only with inclusion checking
        # (the no-inclusion bookkeeping has no batched counterpart)
        block_cap = options.block_size if breadth_first and options.inclusion_checking else 1

        while waiting:
            # budgets are checked *before* popping, so an exhausted budget
            # neither drops a pending node nor overshoots states_explored
            if max_states is not None and stats.states_explored >= max_states:
                stats.termination = "state-budget"
                break
            if deadline is not None and time.perf_counter() > deadline:
                stats.termination = "time-budget"
                break
            if block_cap > 1 and len(waiting) > 1:
                # measure the run of consecutive waiting states that share
                # the head's discrete key (interned bytes compare in C)
                head_key = waiting[0].state.discrete_bytes()
                limit = min(len(waiting), block_cap)
                if max_states is not None:
                    limit = min(limit, max_states - stats.states_explored)
                if deadline is not None:
                    # keep blocks small under a time budget so the batched
                    # clock work between two deadline checks stays bounded;
                    # the replay additionally re-checks the deadline before
                    # every expansion (the scalar before-pop check) and
                    # pushes unexpanded nodes back, so an expensive plan can
                    # overshoot by at most one expansion, not a whole block
                    limit = min(limit, 8)
                run = 1
                while run < limit and waiting[run].state.discrete_bytes() == head_key:
                    run += 1
                if run > 1 and self._por:
                    # keys with an ample plan expand one node at a time: the
                    # probe/proviso decisions must interleave with the
                    # passed-list updates exactly as in the scalar engine
                    head_info = self.generator.plan_info(waiting[0].state)
                    if self.generator.ample_plan(head_info) is not None:
                        run = 1
                if run > 1:
                    block = [waiting.popleft() for _ in range(run)]
                    outcome = self._expand_block(
                        block, passed, waiting, stats, visit, record_traces,
                        deadline,
                    )
                    if outcome == "goal":
                        stats.termination = "goal"
                        stats.stop_timer()
                        return stats
                    if outcome == "deadline":
                        stats.termination = "time-budget"
                        break
                    continue
            node = waiting.popleft() if breadth_first else waiting.pop()
            stats.states_explored += 1

            if self._por:
                outcome = self._expand_ample(node, passed, waiting, stats, visit, record_traces)
                if outcome is not None:
                    if outcome:
                        stats.termination = "goal"
                        stats.stop_timer()
                        return stats
                    continue

            successors = generate(node.state, with_labels=record_traces, extrapolate=False)
            if randomised:
                rng.shuffle(successors)
            for label, successor in successors:
                stats.transitions += 1
                successor = self._canonical(successor, stats)
                if options.inclusion_checking:
                    if not self._store(passed, successor):
                        stats.inclusions += 1
                        if self._lu_active:
                            stats.states_subsumed_lu += 1
                        successor.zone.discard()
                        continue
                else:
                    self.generator.extrapolate(successor.zone)
                    key = (successor.discrete_bytes(), successor.zone.key())
                    federation = passed.setdefault(key, Federation(successor.zone.dim))
                    if len(federation):
                        stats.inclusions += 1
                        if self._lu_active:
                            stats.states_subsumed_lu += 1
                        successor.zone.discard()
                        continue
                    federation.add(successor.zone)
                stats.states_stored += 1
                child = _SearchNode(
                    successor, node if record_traces else _UNRECORDED, label
                )
                if visit is not None and visit(successor, child):
                    stats.termination = "goal"
                    stats.stop_timer()
                    return stats
                waiting.append(child)
                if len(waiting) > stats.peak_waiting:
                    stats.peak_waiting = len(waiting)

        stats.stop_timer()
        return stats

    def _canonical(self, state: SymbolicState, stats: ExplorationStatistics) -> SymbolicState:
        """Fold *state* onto its symmetry-orbit representative (in place).

        Identity (the common case, memoised per discrete key) returns the
        state untouched; a genuine fold permutes the zone's clocks to follow
        the discrete relabelling and counts one ``keys_folded``.
        """
        spec = self.symmetry
        if spec is None:
            return state
        locations, variables, perm = spec.canonicalize(
            state.locations, state.variables, state.dkey
        )
        if perm is None:
            return state
        stats.keys_folded += 1
        state.zone.permute(perm)
        return SymbolicState(
            locations, variables, state.zone, pack_discrete(locations, variables)
        )

    def _expand_ample(
        self,
        node: _SearchNode,
        passed: dict,
        waiting: deque,
        stats: ExplorationStatistics,
        visit: Callable[[SymbolicState, "_SearchNode"], bool] | None,
        record_traces: bool,
    ) -> bool | None:
        """Try to expand *node* through a singleton ample plan.

        Returns ``None`` when the state has no ample plan or the ignoring
        proviso triggered -- the ample successor was already covered by the
        passed list, or its zone died on the target invariant -- in which
        case the caller falls back to the full expansion (this closes the
        classical ignoring problem: a cycle of ample steps must revisit a
        stored state eventually, and the revisit forces a full expansion).
        Returns ``True`` when the stored ample successor was a goal,
        ``False`` when the commuting succeeded.  A rejected probe is off the
        books: only an accepted ample expansion touches the counters, the
        rejected probe leaves the statistics to the full expansion that
        follows.
        """
        generator = self.generator
        info = generator.plan_info(node.state)
        ample = generator.ample_plan(info)
        if ample is None:
            return None
        folds_before = stats.keys_folded
        probe = generator.successors(
            node.state, with_labels=record_traces, extrapolate=False,
            plan_indices=(ample,),
        )
        if not probe:
            return None
        label, successor = probe[0]
        successor = self._canonical(successor, stats)
        if not self._store(passed, successor):
            successor.zone.discard()
            stats.keys_folded = folds_before
            return None
        stats.transitions += 1
        stats.states_stored += 1
        stats.plans_commuted += len(info.plans) - 1
        child = _SearchNode(successor, node if record_traces else _UNRECORDED, label)
        if visit is not None and visit(successor, child):
            return True
        waiting.append(child)
        if len(waiting) > stats.peak_waiting:
            stats.peak_waiting = len(waiting)
        return False

    def _declare_visibility(
        self, *formulas: StateFormula | None, clocks: tuple[str, ...] = ()
    ) -> None:
        """Declare what the active query observes (POR invisibility gate).

        Called by every query entry point before exploring; with no
        arguments the query observes nothing and every eligible plan may be
        commuted.  Raw :meth:`explore` calls do *not* declare visibility --
        a fresh explorer then keeps the reduction off until some entry
        point states what its visit callback reads.
        """
        if not self._por:
            return
        instances: set[int] = set()
        variables: set[int] = set()
        clock_ids: set[int] = {self.network.clock_id(name) for name in clocks}
        for formula in formulas:
            if formula is None:
                continue
            f_instances, f_variables, f_clocks = formula_visibility(formula, self.network)
            instances |= f_instances
            variables |= f_variables
            clock_ids |= f_clocks
        self.generator.set_visibility(instances, variables, clock_ids)

    def _expand_block(
        self,
        nodes: list[_SearchNode],
        passed: dict,
        waiting: deque,
        stats: ExplorationStatistics,
        visit: Callable[[SymbolicState, "_SearchNode"], bool] | None,
        record_traces: bool,
        deadline: float | None = None,
    ) -> str | None:
        """Expand a run of waiting nodes sharing one discrete key as a block.

        The clock work runs batched (:meth:`SuccessorGenerator.
        block_successors` plus one :meth:`Federation.covers_many` coverage
        pass and one batched extrapolation per fired plan), while the
        passed-list updates, statistics and ``visit`` calls replay in the
        exact scalar order (node-major, plans in firing order) -- so the
        stored states, counters and traces are identical to expanding the
        nodes one by one.  Returns ``"goal"`` when *visit* found a goal,
        ``"deadline"`` when the replay stopped on *deadline* (unexpanded
        nodes are already back at the head of *waiting*), ``None``
        otherwise.

        The pre-computed coverage verdicts stay exact under the replay:
        coverage is monotone (``covers_many``), so a candidate covered
        before the block is still covered at its turn, and a ``False``
        verdict can only be flipped by a zone *stored during this block* --
        eviction never shrinks coverage (the evictor includes the evicted
        zone).  The replay therefore tracks the zones it stores per target
        key and re-checks pending candidates against just those, instead of
        re-running the full federation pass.  That re-check may equivalently
        run on the extrapolated candidate because ``Z ⊆ W  ⟺  Extra(Z) ⊆ W``
        for stored zones ``W`` (see :meth:`_store`).
        """
        states = [node.state for node in nodes]
        info, fires = self.generator.block_successors(states)
        count = len(nodes)
        spec = self.symmetry

        # per-fire preparation: symmetry folding of the shared target key,
        # pre-block coverage pass, batched extrapolation of the surviving
        # layers, layer lookup tables
        prepared = []
        errors = []
        for fire in fires:
            if fire.error is not None:
                has_node = np.zeros(count, dtype=bool)
                has_node[fire.node_indices] = True
                errors.append((fire, has_node))
                continue
            plan = fire.plan
            locations, variables = plan.locations, plan.variables
            key_bytes = plan.key_bytes
            folded = False
            if spec is not None:
                locations, variables, perm = spec.canonicalize(
                    plan.locations, plan.variables, plan.key_bytes
                )
                if perm is not None:
                    # every layer shares the plan's target discrete state,
                    # so one whole-stack clock permutation folds them all;
                    # it must precede coverage and extrapolation (both are
                    # clock-labelled)
                    fire.stack.permute(perm)
                    key_bytes = pack_discrete(locations, variables)
                    folded = True
            layer_of = np.full(count, -1, dtype=np.intp)
            layer_of[fire.node_indices] = np.arange(len(fire.node_indices))
            federation = passed.get(key_bytes)
            if federation is not None:
                covered = federation.covers_many(fire.stack.a)
            else:
                covered = np.zeros(len(fire.node_indices), dtype=bool)
            kept = np.flatnonzero(~covered)
            if len(kept) < len(fire.node_indices):
                stack = fire.stack.compress(kept) if len(kept) else None
                fire.stack.discard()
            else:
                stack = fire.stack
            if stack is not None:
                self.generator.extrapolate_stack(stack)
                flat = stack.a.reshape(len(kept), -1)
            else:
                flat = None
            kept_layer = np.full(len(fire.node_indices), -1, dtype=np.intp)
            kept_layer[kept] = np.arange(len(kept))
            label = self.generator._plan_label(info, fire.plan_index) if record_traces else None
            prepared.append((
                layer_of, covered, kept_layer, stack, flat, label,
                locations, variables, key_bytes, folded,
            ))

        try:
            return self._replay_block(
                nodes, prepared, errors, passed, waiting, stats, visit,
                record_traces, deadline,
            )
        finally:
            # also reached when a deferred plan error propagates mid-replay:
            # the pooled block buffers must go back either way
            for entry in prepared:
                stack = entry[3]
                if stack is not None:
                    stack.discard()

    def _replay_block(
        self, nodes, prepared, errors, passed, waiting, stats, visit,
        record_traces, deadline=None,
    ) -> str | None:
        """The scalar-order replay of :meth:`_expand_block` (see there).

        ``pending`` collects the zones stored per target key while the block
        replays -- they are the only zones that can invalidate a negative
        pre-block coverage verdict, so later candidates re-check against
        just them, and each federation is flushed once at block end
        (``add_many_uncovered``), not once per stored zone.

        *deadline* replays the scalar engine's before-pop time-budget check
        before every expansion after the first (the outer loop already
        checked before the block was popped): on expiry the unexpanded tail
        goes back to the head of the waiting list in order and the zones
        stored so far are flushed, leaving exactly the state a scalar run
        stopped at the same expansion count would leave.
        """
        count = len(nodes)
        pending: dict[bytes, list] = {}
        goal = False
        expired = False
        for position, node in enumerate(nodes):
            if goal:
                break
            if (
                deadline is not None and position
                and time.perf_counter() > deadline
            ):
                waiting.extendleft(reversed(nodes[position:]))
                expired = True
                break
            stats.states_explored += 1
            for fire, has_node in errors:
                if has_node[position]:
                    # scalar generation raises before yielding any successor
                    # of this state; earlier nodes of the block are done
                    raise fire.error.with_traceback(None)
            for (layer_of, covered, kept_layer, stack, flat, label,
                 locations, variables, key_bytes, folded) in prepared:
                layer = layer_of[position]
                if layer < 0:
                    continue
                stats.transitions += 1
                if folded:
                    stats.keys_folded += 1
                if covered[layer]:
                    stats.inclusions += 1
                    if self._lu_active:
                        stats.states_subsumed_lu += 1
                    continue
                row = flat[kept_layer[layer]]
                stored_here = pending.get(key_bytes)
                if stored_here is not None and any(
                    (row <= zone.m).all() for zone in stored_here
                ):
                    stats.inclusions += 1
                    if self._lu_active:
                        stats.states_subsumed_lu += 1
                    continue
                zone = stack.layer_dbm(kept_layer[layer])
                if stored_here is None:
                    pending[key_bytes] = [zone]
                else:
                    stored_here.append(zone)
                stats.states_stored += 1
                successor = SymbolicState(locations, variables, zone, key_bytes)
                child = _SearchNode(successor, node if record_traces else _UNRECORDED, label)
                if visit is not None and visit(successor, child):
                    goal = True
                    break
                waiting.append(child)
                # the scalar engine would still hold this block's unprocessed
                # tail in the waiting list at this point; account for it so
                # the peak matches the scalar run exactly
                virtual_length = len(waiting) + (count - position - 1)
                if virtual_length > stats.peak_waiting:
                    stats.peak_waiting = virtual_length

        # flush the block's stores, one batched federation update per key (on
        # a goal return the flush is skipped: the passed list dies with the
        # search, and the statistics were already updated during the replay)
        if not goal:
            for key, zones in pending.items():
                federation = passed.get(key)
                if federation is None:
                    federation = Federation(zones[0].dim)
                    passed[key] = federation
                federation.add_many_uncovered(zones)
        if goal:
            return "goal"
        return "deadline" if expired else None

    def _store(self, passed: dict, state: SymbolicState) -> bool:
        """Insert into the passed list; False when an existing zone covers it.

        The passed list is keyed by the interned bytes form of the discrete
        state (precomputed by the successor plans).  The coverage check runs
        on the *raw* delay-closed zone; extrapolation is applied only to
        states that are actually kept.  The two decisions coincide: for
        canonical zones ``Z ⊆ W`` iff ``Extra(Z) ⊆ W`` whenever ``W`` is a
        stored (extrapolated, hence Extra-fixpoint) zone, because
        extrapolation is monotone, idempotent and extensive.  Skipping
        ``Extra`` (a full Floyd-Warshall re-closure) for every covered
        successor is one of the main wins of the exploration hot path.
        """
        key = state.discrete_bytes()
        federation = passed.get(key)
        if federation is None:
            federation = Federation(state.zone.dim)
            passed[key] = federation
        elif federation.covers(state.zone):
            return False
        self.generator.extrapolate(state.zone)
        federation.add_uncovered(state.zone)
        return True

    # ------------------------------------------------------------------ queries
    def check(self, query: Query) -> ReachabilityResult:
        """Evaluate an :class:`EF` or :class:`AG` query."""
        if isinstance(query, EF):
            return self._check_ef(query)
        if isinstance(query, AG):
            return self._check_ag(query)
        raise ModelError(f"unsupported query {query!r}")

    def _check_ef(self, query: EF) -> ReachabilityResult:
        # query.bind registers the formula's clock constants with the
        # network; scope them to this run like _check_ag and sup do
        saved_constants = self.network.query_constants_snapshot()
        try:
            bound_formula = query.bind(self.network)
            self._declare_visibility(query.formula)
            found: list[_SearchNode] = []

            def visit(state: SymbolicState, node: _SearchNode) -> bool:
                if bound_formula.possibly(state):
                    found.append(node)
                    return True
                return False

            stats = self.explore(visit)
            if found:
                return ReachabilityResult(
                    query, True, found[0].trace() if self.search.record_traces else None, stats
                )
            holds: bool | None = False if stats.exhaustive else None
            return ReachabilityResult(query, holds, None, stats)
        finally:
            self.network.restore_query_constants(saved_constants)

    def _check_ag(self, query: AG) -> ReachabilityResult:
        bound_formula = BoundFormula(query.formula, self.network)
        # A[] φ is violated when ¬φ is possibly satisfied somewhere.
        negated = BoundFormula(query.formula.negate(), self.network)
        # clock constants mentioned by the property must be visible to the
        # extrapolation during *this* run only: scope them so that repeated
        # queries on one explorer do not coarsen each other's abstractions
        saved_constants = self.network.query_constants_snapshot()
        try:
            for clock, constant in negated.max_clock_constant().items():
                self.network.register_query_constant(clock, constant)
            for clock, constant in bound_formula.max_clock_constant().items():
                self.network.register_query_constant(clock, constant)
            # ¬φ observes exactly the atoms of φ
            self._declare_visibility(query.formula)
            violations: list[_SearchNode] = []

            def visit(state: SymbolicState, node: _SearchNode) -> bool:
                if negated.possibly(state):
                    violations.append(node)
                    return True
                return False

            stats = self.explore(visit)
            if violations:
                return ReachabilityResult(
                    query,
                    False,
                    violations[0].trace() if self.search.record_traces else None,
                    stats,
                )
            holds: bool | None = True if stats.exhaustive else None
            return ReachabilityResult(query, holds, None, stats)
        finally:
            self.network.restore_query_constants(saved_constants)

    def sup(self, query: Sup) -> SupResult:
        """Evaluate a :class:`Sup` query by a single exhaustive exploration.

        The query's ceiling and condition constants are registered with the
        network only for the duration of the run (scoped, like ``A[]``).
        """
        network = self.network
        clock_id = network.clock_id(query.clock)
        saved_constants = network.query_constants_snapshot()
        try:
            if query.ceiling is not None:
                network.register_query_constant(clock_id, int(query.ceiling))
            condition = (
                BoundFormula(query.condition, network) if query.condition is not None else None
            )
            if condition is not None:
                for clock, constant in condition.max_clock_constant().items():
                    network.register_query_constant(clock, constant)
            # the supremum reads the queried clock in every matching state;
            # commuted interleavings never lose it: time is frozen while an
            # ample source location is occupied, so the skipped states'
            # clock bounds never exceed their block entry state's
            self._declare_visibility(query.condition, clocks=(query.clock,))

            best_raw = None
            best_node: list[_SearchNode | None] = [None]

            def visit(state: SymbolicState, node: _SearchNode) -> bool:
                nonlocal best_raw
                if condition is not None and not condition.possibly(state):
                    return False
                raw = state.zone.upper_bound(clock_id)
                if best_raw is None or raw > best_raw:
                    best_raw = raw
                    best_node[0] = node
                return False

            stats = self.explore(visit)

            if best_raw is None:
                return SupResult(query, None, False, not stats.exhaustive, stats)

            value, strict = bound_as_tuple(best_raw)
            hit_ceiling = best_raw >= INFINITY_RAW or (
                query.ceiling is not None and value is not None and value >= query.ceiling
            )
            if value is None:
                # the bound was abstracted to infinity: report the ceiling as a
                # lower bound (mirrors the paper's "> x" entries)
                ceiling = (
                    query.ceiling if query.ceiling is not None
                    else network.max_constants[clock_id]
                )
                trace = (
                    best_node[0].trace()
                    if best_node[0] and self.search.record_traces
                    else None
                )
                return SupResult(query, int(ceiling), False, True, stats, trace)
            return SupResult(
                query,
                int(value),
                not strict,
                bool(hit_ceiling or not stats.exhaustive),
                stats,
                best_node[0].trace() if best_node[0] and self.search.record_traces else None,
            )
        finally:
            network.restore_query_constants(saved_constants)

    # ------------------------------------------------------------------ convenience
    def reachable_discrete_states(self) -> set[tuple]:
        """Explore fully and return the set of reachable discrete states.

        Always enumerates the *concrete* discrete space: symmetry folding
        and ample commuting are suspended for the duration of the call, so
        the result is independent of the active reduction config.
        """
        seen: set[tuple] = set()

        def visit(state: SymbolicState, _node: _SearchNode) -> bool:
            seen.add(state.discrete_key())
            return False

        saved_symmetry, saved_por = self.symmetry, self._por
        self.symmetry, self._por = None, False
        try:
            stats = self.explore(visit)
        finally:
            self.symmetry, self._por = saved_symmetry, saved_por
        if not stats.exhaustive:
            raise AnalysisError(
                "exploration budget exhausted before the state space was covered"
            )
        return seen

    def count_states(self) -> ExplorationStatistics:
        """Explore fully (or until the budget) and return the statistics.

        Declares an empty visibility: a pure state count observes nothing,
        so the partial-order reduction may commute every eligible plan.
        """
        self._declare_visibility()
        return self.explore(None)
