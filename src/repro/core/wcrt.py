"""Worst-case response time (WCRT) extraction.

The paper finds the WCRT of a scenario by binary-searching for the smallest
constant ``C`` such that

    A[] (observer.seen  =>  observer.y < C)                    (Property 1)

holds.  This module implements that procedure
(:func:`wcrt_binary_search`) and, as the default, a single-pass alternative
(:func:`wcrt_sup`): a ``sup`` query over the observer clock restricted to the
states in which a measurement completes.  Both agree on models whose state
space can be explored exhaustively — a fact exercised by the test suite — but
the single-pass query needs one exploration instead of ``log2(hi - lo)``.

When the exploration budget is exhausted first, the result is flagged as a
*lower bound*, reproducing the ``> x (df/rdf)`` entries of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import expressions as ex
from repro.core.guards import ClockConstraint
from repro.core.network import CompiledNetwork
from repro.core.properties import AG, EF, And, ClockProp, Not, Or, StateFormula, Sup
from repro.core.reachability import SearchOptions, Trace
from repro.core.shard import select_explorer
from repro.core.statistics import ExplorationStatistics
from repro.core.successors import SemanticsOptions
from repro.util.errors import AnalysisError

__all__ = ["WCRTResult", "wcrt_sup", "wcrt_binary_search"]


@dataclass
class WCRTResult:
    """A worst-case response time in model time units."""

    #: the WCRT value (or best known lower bound); None if the measured
    #: response never occurred in the explored state space
    value: int | None
    #: True when the value is only a lower bound on the true WCRT
    is_lower_bound: bool
    #: True when the value is attained by some run (weak bound)
    attained: bool
    #: "sup" or "binary-search"
    method: str
    statistics: ExplorationStatistics
    trace: Trace | None = None

    def __str__(self) -> str:
        if self.value is None:
            return "WCRT: no response observed"
        prefix = "> " if self.is_lower_bound else ""
        return f"WCRT {prefix}{self.value} ({self.method}, {self.statistics})"


def wcrt_sup(
    network: CompiledNetwork,
    observer_clock: str,
    condition: StateFormula,
    ceiling: int,
    semantics: SemanticsOptions | None = None,
    search: SearchOptions | None = None,
) -> WCRTResult:
    """Compute the WCRT with a single-pass ``sup`` query.

    Parameters
    ----------
    network:
        the compiled network including the measuring observer.
    observer_clock:
        qualified name of the observer clock (e.g. ``"Obs.y"``).
    condition:
        state formula identifying the states in which a measured response has
        just been observed (e.g. ``LocationProp("Obs", "seen")``).
    ceiling:
        extrapolation ceiling for the observer clock; must be at least the
        latency requirement being checked.  Values above the ceiling are
        reported as lower bounds.
    """
    explorer = select_explorer(network, semantics, search)
    result = explorer.sup(Sup(observer_clock, condition, ceiling))
    return WCRTResult(
        value=result.value,
        is_lower_bound=result.is_lower_bound,
        attained=result.attained,
        method="sup",
        statistics=result.statistics,
        trace=result.trace,
    )


def wcrt_binary_search(
    network: CompiledNetwork,
    observer_clock: str,
    condition: StateFormula,
    lo: int,
    hi: int,
    semantics: SemanticsOptions | None = None,
    search: SearchOptions | None = None,
) -> WCRTResult:
    """Compute the WCRT with the paper's binary search over Property 1.

    Searches for the smallest ``C`` in ``(lo, hi]`` such that
    ``A[] (condition => observer_clock < C)`` holds and returns ``C - 1``
    (the supremum, which for the integer-bounded models of this library is
    attained).  Raises :class:`~repro.util.errors.AnalysisError` when even
    ``hi`` does not satisfy the property — the caller chose the interval too
    small — and flags the result as a lower bound when any of the underlying
    explorations was cut short by its budget.

    Interval soundness
    ------------------
    ``lo`` must be a value at which Property 1 is *known to fail* — i.e. a
    certified lower bound on the WCRT.  A response of ``L`` ticks observed
    in any concrete run (e.g. a DES trace) certifies ``lo = L``: the state
    ``condition and observer_clock >= L`` is reachable, so the property
    fails for every ``C <= L``.  ``hi`` must be a value at which the
    property *holds* — any sound upper bound plus one (e.g. a SymTA/MPA
    analytic bound + 1, as chosen by :mod:`repro.portfolio.guided`).  ``hi``
    doubles as the observer-clock extrapolation ceiling for the whole
    search (registered as a query constant), so a tighter upper bound also
    shrinks every iteration's symbolic state space.  The defaults used by
    :func:`repro.arch.analysis.analyze_wcrt` — ``lo = 0`` and ``hi = 2 x
    requirement bound`` — are always safe but explore the most states.
    """
    if lo < 0 or hi <= lo:
        raise AnalysisError(f"invalid WCRT search interval ({lo}, {hi}]")

    total_stats = ExplorationStatistics(search_order=(search.order if search else "bfs"))
    undecided = False

    def property_holds(c: int) -> bool | None:
        formula = Or(Not(condition), ClockProp(
            ClockConstraint(observer_clock, "<", ex.IntConst(int(c)))
        ))
        explorer = select_explorer(network, semantics, search)
        outcome = explorer.check(AG(formula))
        total_stats.merge(outcome.statistics)
        return outcome.holds

    # the observer ceiling is only meaningful for this search: scope it so
    # later queries on the same network see the original abstraction
    saved_constants = network.query_constants_snapshot()
    try:
        network.register_query_constant(observer_clock, hi)

        upper_ok = property_holds(hi)
        if upper_ok is False:
            raise AnalysisError(
                f"WCRT exceeds the search interval: "
                f"A[] ({condition} => {observer_clock} < {hi}) is violated"
            )
        if upper_ok is None:
            undecided = True

        low, high = lo, hi  # invariant: property fails at `low` (or unknown), holds at `high`
        while high - low > 1:
            mid = (low + high) // 2
            verdict = property_holds(mid)
            if verdict is True:
                high = mid
            elif verdict is False:
                low = mid
            else:
                undecided = True
                low = mid  # treat as "not yet proven": keep searching upwards

        # witness extraction: the WCRT `high - 1` is attained, so a state with
        # `condition && observer_clock >= high - 1` is reachable; one more
        # (goal-directed, hence cheap) exploration records the trace to it,
        # giving the binary search the same witness capability as `sup`
        trace: Trace | None = None
        if search is not None and search.record_traces and not undecided:
            witness_query = EF(And(condition, ClockProp(
                ClockConstraint(observer_clock, ">=", ex.IntConst(int(high - 1)))
            )))
            explorer = select_explorer(network, semantics, search)
            witness_outcome = explorer.check(witness_query)
            total_stats.merge(witness_outcome.statistics)
            if witness_outcome.holds is not True:
                undecided = True
            else:
                trace = witness_outcome.trace
    finally:
        network.restore_query_constants(saved_constants)

    total_stats.termination = "exhausted" if not undecided else "state-budget"
    return WCRTResult(
        value=high - 1,
        is_lower_bound=undecided,
        attained=not undecided,
        method="binary-search",
        statistics=total_stats,
        trace=trace,
    )
