"""Sharded exact exploration: the zone graph split across worker processes.

:class:`ShardedExplorer` partitions the passed and waiting stores of the
breadth-first engine by a stable hash of the interned discrete key across
``SearchOptions.shard_workers`` forked worker processes.  Every discrete key
is *owned* by exactly one shard (``crc32(key) % workers``); the owner holds
the key's :class:`~repro.core.federation.Federation` and makes every
store/coverage decision for it, so the per-key decision sequence is a local
replay of the scalar engine.  Successor candidates whose target key lives on
another shard are handed off through per-worker
:class:`~repro.core.zonepool.SharedZonePool` outboxes (the pipes carry only
``(offset, count)`` descriptors, the raw zone rows travel through shared
memory).

Round protocol
--------------
The exploration proceeds in *rounds* that are exactly the BFS levels of the
scalar engine:

1. **ship** (optional): when the coordinator's deterministic count-based
   work-stealing pass finds a skewed frontier, the richest shard ships half
   of its surplus (the highest-sequence states) to the poorest shard.
2. **expand**: every worker pops its owned (plus stolen) frontier states
   below the round horizon, pushes them through the batched successor
   kernels (:meth:`SuccessorGenerator.block_successors`), folds each target
   key onto its symmetry representative *before* hashing, and routes each
   candidate -- tagged ``(parent_seq, plan_index)`` -- to the owner of its
   target key.
3. **decide**: every worker sorts the candidates it owns by tag and replays
   the scalar store discipline per key: one batched
   :meth:`Federation.covers_many` pass against the pre-round federation,
   batched extrapolation of the survivors, then a tag-ordered walk with the
   same pending re-check the block engine uses
   (:meth:`Explorer._replay_block`), flushed once per key through
   :meth:`Federation.add_many_uncovered`.
4. **merge**: the coordinator lexsorts the reported tags, assigns global
   scalar sequence numbers (``seq`` = scalar BFS pop order), accumulates the
   per-candidate decision records into the statistics, and resolves goals,
   deferred plan errors and the supremum in tag order.

Determinism
-----------
The scalar candidate order *is* the lexicographic tag order: scalar BFS pops
states in seq order and generates each state's successors in plan-index
order.  Candidate generation never reads the passed list, and a candidate's
store/coverage decision depends only on the zones previously stored under
its own key -- all of which live on the owner shard (earlier rounds) or in
the owner's tag-ordered pending list (this round).  The owner deciding its
candidates in tag order therefore replays the scalar decisions exactly;
verdicts, traces, witnesses and every comparable
:class:`ExplorationStatistics` counter are bit-identical to the scalar
engine (``tests/core/test_shard.py`` pins this, the scaling benchmark
enforces it on the case study with a hard non-zero exit).

Witness traces are reconstructed by *replay*: the coordinator keeps only the
``(parent_seq, plan_index)`` tag of every stored state, walks the tag chain
from the goal back to the root, and re-fires the plan chain from the initial
state through the scalar successor pipeline -- bit-identical zones at a
memory cost independent of the state count.

The round barrier makes distributed termination detection degenerate: the
coordinator relays every message, so its per-round credit accounting
(requests out == replies in, frontier empty, nothing stored) is the
Safra-style termination token collapsed onto a star topology.

Supervision: a worker that dies (fault injection, OOM, a kill) closes its
pipe; the coordinator detects the EOF, tears the fleet down and restarts the
whole exploration once -- the restart is deterministic, so the result is
unchanged.  A second crash raises :class:`AnalysisError`.  Worker-side
*semantic* errors (deferred range violations behind live guards) are not
crashes: they travel back as data and re-raise in the parent exactly where
the scalar engine would have raised them.

The ample-set (partial-order) reduction stays off under sharding: its
ignoring proviso reads the passed list mid-expansion, which under the level-
synchronous protocol would observe a stale shard-local prefix.  Symmetry
folding and LU extrapolation compose fully (``docs/performance.md``).
"""

from __future__ import annotations

import os
import pickle
import signal
import struct
import time
import zlib
from array import array

import numpy as np

from repro.core.dbm import DBM, DBMStack
from repro.core.federation import Federation
from repro.core.network import CompiledNetwork
from repro.core.properties import BoundFormula
from repro.core.reachability import (
    _UNRECORDED,
    Explorer,
    SearchOptions,
    _SearchNode,
)
from repro.core.statistics import ExplorationStatistics
from repro.core.successors import SemanticsOptions, SymbolicState, pack_discrete
from repro.core.zonepool import SharedZonePool
from repro.util.errors import AnalysisError

__all__ = ["ShardedExplorer", "select_explorer"]

#: frontier imbalance (richest minus poorest shard) above which the
#: coordinator ships half the surplus; tests shrink it to force steals
_STEAL_THRESHOLD = 64

#: rows per worker outbox segment; larger hand-off bursts spill inline
_OUTBOX_ROWS = 8192


def _owner_of(key_bytes: bytes, workers: int) -> int:
    """Owner shard of a discrete key (stable across processes and runs)."""
    return zlib.crc32(key_bytes) % workers


def _unpack_key(key_bytes: bytes, n_instances: int) -> tuple[tuple, tuple]:
    """Invert :func:`pack_discrete` (int64 round-trips exactly)."""
    values = array("q")
    values.frombytes(key_bytes)
    return tuple(values[:n_instances]), tuple(values[n_instances:])


class _ShardCrash(Exception):
    """A worker pipe closed unexpectedly: the shard fleet must restart."""


class _ShardFatal(Exception):
    """A worker hit an unexpected exception (deterministic; do not restart)."""

    def __init__(self, error: BaseException):
        super().__init__(repr(error))
        self.error = error


# ------------------------------------------------------------------ pipe framing
def _write_exact(fd: int, payload: bytes) -> None:
    view = memoryview(payload)
    while view:
        try:
            written = os.write(fd, view)
        except OSError as exc:
            raise _ShardCrash(f"shard pipe write failed: {exc}") from None
        view = view[written:]


def _read_exact(fd: int, count: int) -> bytes:
    chunks = []
    while count:
        try:
            chunk = os.read(fd, count)
        except OSError as exc:
            raise _ShardCrash(f"shard pipe read failed: {exc}") from None
        if not chunk:
            raise _ShardCrash("shard pipe closed unexpectedly")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def _send(fd: int, message: object) -> None:
    data = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    _write_exact(fd, struct.pack("<Q", len(data)) + data)


def _recv(fd: int) -> tuple:
    (length,) = struct.unpack("<Q", _read_exact(fd, 8))
    return pickle.loads(_read_exact(fd, length))


class _EvalSpec:
    """What every shard evaluates on each stored state (built pre-fork).

    The spec closes over bound formulas whose query constants the entry
    point registered *before* the fork, so every worker inherits the exact
    extrapolation the scalar engine would use.
    """

    __slots__ = ("kind", "predicate", "clock_id", "condition")

    def __init__(self, kind, predicate=None, clock_id=None, condition=None):
        self.kind = kind  # "count", "goal" or "sup"
        self.predicate = predicate
        self.clock_id = clock_id
        self.condition = condition


#: cached strictly-upper-triangular masks for `_covered_by_earlier` (the
#: screens run once per key per round, mostly on small candidate counts)
_TRIU_CACHE: dict = {}


def _covered_by_earlier(flat: np.ndarray) -> np.ndarray:
    """Row mask: row ``j`` is elementwise ``<=`` some EARLIER row ``i < j``.

    The pairwise comparison is chunked along the candidate axis so the
    broadcast scratch stays bounded no matter how wide a frontier level is.
    """
    k = len(flat)
    if k <= 1:
        return np.zeros(k, dtype=bool)
    step = max(1, (32 << 20) // max(1, k * flat.shape[1]))
    if k <= step:
        earlier = _TRIU_CACHE.get(k)
        if earlier is None:
            earlier = _TRIU_CACHE[k] = np.triu(np.ones((k, k), dtype=bool), 1)
        block = (flat[:, None, :] >= flat[None, :, :]).all(axis=2)
        block &= earlier
        return block.any(axis=0)
    out = np.zeros(k, dtype=bool)
    for start in range(1, k, step):  # row 0 has no earlier row
        stop = min(k, start + step)
        block = (flat[:stop, None, :] >= flat[None, start:stop, :]).all(axis=2)
        earlier = np.arange(stop)[:, None] < np.arange(start, stop)[None, :]
        out[start:stop] = (block & earlier).any(axis=0)
    return out


def _covered_by_earlier_masked(flat: np.ndarray, changed: np.ndarray) -> np.ndarray:
    """:func:`_covered_by_earlier` restricted to pairs with a changed row.

    The caller certifies that a pair of UNCHANGED rows cannot cover each
    other (the raw screen eliminated those before extrapolation), so only
    columns and rows flagged in *changed* need comparing.
    """
    k = len(flat)
    cols = np.flatnonzero(changed)
    if len(cols) * k * flat.shape[1] > (32 << 20):
        # wide level with mostly-changed rows: the slim pair set would not
        # be slim, and the chunked full screen gives the same verdicts
        return _covered_by_earlier(flat)
    out = np.zeros(k, dtype=bool)
    rows_idx = np.arange(k)
    # changed row j against every earlier row i
    block = (flat[:, None, :] >= flat[None, cols, :]).all(axis=2)
    block &= rows_idx[:, None] < cols[None, :]
    out[cols] = block.any(axis=0)
    # any row j against every earlier CHANGED row i
    block = (flat[cols, None, :] >= flat[None, :, :]).all(axis=2)
    block &= cols[:, None] < rows_idx[None, :]
    out |= block.any(axis=0)
    return out


class _KeyContext:
    """Per-target-key store state of one decide phase."""

    __slots__ = ("key", "pending", "locations", "variables")

    def __init__(self, key, locations, variables):
        self.key = key
        self.pending = []
        self.locations = locations
        self.variables = variables


class _ShardWorker:
    """One forked shard: owns a key partition, speaks the round protocol."""

    def __init__(self, rank, workers, read_fd, write_fd, explorer, spec,
                 pool, initial, root_key, attempt):
        self.rank = rank
        self.workers = workers
        self.read_fd = read_fd
        self.write_fd = write_fd
        self.generator = explorer.generator
        self.symmetry = explorer.symmetry
        self.spec = spec
        self.pool = pool
        self.dim = explorer.network.dim
        self.n_instances = len(explorer.network.instances)
        self.attempt = attempt
        self.passed: dict[bytes, Federation] = {}
        #: seq -> (key_bytes, state); stored, not yet expanded
        self.frontier: dict[int, tuple[bytes, SymbolicState]] = {}
        #: stored this round, awaiting sequence numbers (tag order)
        self.unassigned: list[tuple[tuple[int, int], bytes, SymbolicState]] = []
        #: candidate groups this worker generated for itself
        self.local_groups: list[tuple] = []
        self.sup_best: tuple[int, tuple[int, int]] | None = None
        self._injected = False
        if _owner_of(root_key, workers) == rank:
            federation = Federation(self.dim)
            federation.add_uncovered(initial.zone)
            self.passed[root_key] = federation
            self.frontier[0] = (root_key, initial)

    # -------------------------------------------------------------- main loop
    def run(self) -> None:
        try:
            while True:
                message = _recv(self.read_fd)
                tag = message[0]
                if tag == "expand":
                    self._expand(message[1], message[2], message[3])
                elif tag == "decide":
                    self._decide(message[1])
                elif tag == "ship":
                    self._ship(message[1], message[2])
                else:  # pragma: no cover - protocol bug
                    raise AnalysisError(f"unknown shard message {tag!r}")
        except _ShardCrash:
            # the coordinator closed the pipes: normal shutdown
            os._exit(0)
        except BaseException as exc:  # noqa: BLE001 - must cross the pipe
            try:
                try:
                    pickle.dumps(exc)
                except Exception:
                    exc = AnalysisError(
                        f"shard worker {self.rank} failed: {exc!r}"
                    )
                _send(self.write_fd, ("fatal", exc))
            except _ShardCrash:
                pass
            os._exit(1)

    # -------------------------------------------------------------- expand
    def _install(self, assigned) -> None:
        """Bind the coordinator's sequence numbers to last round's stores."""
        if len(assigned) != len(self.unassigned):  # pragma: no cover
            raise AnalysisError("shard sequence assignment out of step")
        for (tag, key, state), seq in zip(self.unassigned, assigned):
            self.frontier[seq] = (key, state)
        self.unassigned = []

    def _expand(self, upto, assigned, stolen) -> None:
        self._install(assigned)
        for seq, key, row in stolen:
            locations, variables = _unpack_key(key, self.n_instances)
            zone = DBM(self.dim, raw=row)
            self.frontier[seq] = (
                key, SymbolicState(locations, variables, zone, key)
            )
        if not self._injected:
            self._injected = True
            from repro.sweep.faults import maybe_inject

            maybe_inject(f"shard/{self.rank}", self.rank, self.attempt,
                         stage="shard")

        todo = sorted(seq for seq in self.frontier if seq < upto)
        by_key: dict[bytes, list] = {}
        for seq in todo:
            key, state = self.frontier.pop(seq)
            by_key.setdefault(key, []).append((seq, state))

        outgoing: dict[int, list] = {}
        error = None  # (parent_seq, exception)
        handoffs = 0
        offset = 0
        for group in by_key.values():
            seqs = np.array([seq for seq, _ in group], dtype=np.int64)
            states = [state for _, state in group]
            _info, fires = self.generator.block_successors(states)
            for fire in fires:
                if fire.error is not None:
                    error_seq = int(seqs[fire.node_indices].min())
                    if error is None or error_seq < error[0]:
                        error = (error_seq, fire.error)
                    continue
                plan = fire.plan
                locations = plan.locations
                variables = plan.variables
                key_bytes = plan.key_bytes
                folded = False
                if self.symmetry is not None:
                    locations, variables, perm = self.symmetry.canonicalize(
                        plan.locations, plan.variables, plan.key_bytes
                    )
                    if perm is not None:
                        # fold before hashing: the whole stack shares the
                        # plan's target key, one permutation folds every layer
                        fire.stack.permute(perm)
                        key_bytes = pack_discrete(locations, variables)
                        folded = True
                parent_seqs = seqs[fire.node_indices]
                rows = fire.stack.a.reshape(len(parent_seqs), -1)
                dest = _owner_of(key_bytes, self.workers)
                if dest == self.rank:
                    self.local_groups.append(
                        (key_bytes, fire.plan_index, folded, parent_seqs,
                         rows.copy())
                    )
                else:
                    handoffs += len(parent_seqs)
                    if self.pool.write(self.rank, offset, rows):
                        ref = ("shm", offset, len(parent_seqs))
                        offset += len(parent_seqs)
                    else:
                        ref = ("inline", rows.copy())
                    outgoing.setdefault(dest, []).append(
                        (key_bytes, fire.plan_index, folded, parent_seqs, ref)
                    )
                fire.stack.discard()
        _send(self.write_fd, ("expanded", outgoing, error, handoffs))

    # -------------------------------------------------------------- decide
    def _decide(self, incoming) -> None:
        groups = []
        for src, key, plan_index, folded, parent_seqs, ref in incoming:
            if ref[0] == "shm":
                rows = self.pool.read(src, ref[1], ref[2])
            else:
                rows = ref[1]
            groups.append((key, plan_index, folded, parent_seqs, rows))
        groups.extend(self.local_groups)
        self.local_groups = []

        candidates = []  # (parent_seq, plan_index, group, row)
        for g, (_key, plan_index, _folded, parent_seqs, _rows) in enumerate(groups):
            for i, parent_seq in enumerate(parent_seqs):
                candidates.append((int(parent_seq), int(plan_index), g, i))
        candidates.sort(key=lambda c: (c[0], c[1]))

        total = len(candidates)
        if total:
            arr = np.array(candidates, dtype=np.int64)
        else:
            arr = np.empty((0, 4), dtype=np.int64)
        parents = np.ascontiguousarray(arr[:, 0])
        plans = np.ascontiguousarray(arr[:, 1])
        group_folded = np.fromiter(
            (bool(group[2]) for group in groups), dtype=bool, count=len(groups)
        )
        folded_mask = (
            group_folded[arr[:, 2]] if total else np.zeros(0, dtype=bool)
        )
        stored = np.zeros(total, dtype=bool)

        # per-key preparation mirroring Explorer._expand_block: coverage on
        # the raw rows against the pre-round federation, then a two-stage
        # within-level screen (the block engine's sequential pending
        # discipline, vectorised):
        #
        # 1. raw-vs-raw -- a candidate included in an EARLIER raw candidate
        #    is doomed before paying for extrapolation (extrapolation and
        #    re-closure are entrywise monotone, so raw inclusion survives
        #    into the stored comparison);
        # 2. extrapolated-vs-extrapolated among the survivors
        #    (Z <= W  <=>  Extra(Z) <= W for stored W).
        #
        # Both stages kill exactly the candidates the scalar engine's
        # store-then-recheck would: by transitivity of inclusion, a
        # candidate covered by a killed earlier zone is also covered by
        # whatever stored zone killed that one.
        key_refs: dict[bytes, list] = {}
        for index, (parent_seq, plan_index, g, i) in enumerate(candidates):
            key_refs.setdefault(groups[g][0], []).append((g, i, index))
        prepared = []  # (key, refs, decision, survivors, sub, offset)
        total_layers = 0
        for key, refs in key_refs.items():
            g = refs[0][0]
            if len(refs) == len(groups[g][4]) and all(
                ref[0] == g and ref[1] == pos for pos, ref in enumerate(refs)
            ):
                raw = groups[g][4]  # whole single group, already in order
            else:
                raw = np.stack([groups[g][4][i] for g, i, _index in refs])
            federation = self.passed.get(key)
            if federation is not None:
                covered = federation.covers_many(raw)
            else:
                covered = np.zeros(len(refs), dtype=bool)
            kept = np.flatnonzero(~covered)
            decision = ~covered
            survivors = sub = None
            offset = total_layers
            if len(kept):
                sub = raw[kept] if len(kept) < len(refs) else raw
                doomed_raw = _covered_by_earlier(sub)
                if doomed_raw.any():
                    sub = sub[~doomed_raw]
                survivors = kept[~doomed_raw]
                total_layers += len(survivors)
            prepared.append((key, refs, decision, survivors, sub, offset))

        # one shared stack for the whole round: the extrapolation grids are
        # global, each layer's kernels are independent, and one big batch
        # amortises the per-stack dispatch cost across every key
        stack = None
        flat_all = None
        if total_layers:
            stack = DBMStack(total_layers, self.dim)
            flat_all = stack.a.reshape(total_layers, -1)
            for _key, _refs, _decision, survivors, sub, offset in prepared:
                if survivors is not None and len(survivors):
                    flat_all[offset:offset + len(survivors)] = sub
            self.generator.extrapolate_stack(stack)

        contexts: list[_KeyContext] = []
        zone_context: list = [None] * total
        zone_layer = np.zeros(total, dtype=np.intp)
        for key, refs, decision, survivors, sub, offset in prepared:
            layer_of = None
            if survivors is not None and len(survivors):
                count = len(survivors)
                flat = flat_all[offset:offset + count]
                # the raw screen already settled every pair of rows the
                # extrapolation left untouched, so the second screen only
                # needs pairs with at least one widened row
                changed = (flat != sub).any(axis=1)
                decision[:] = False
                if changed.any():
                    doomed_extra = _covered_by_earlier_masked(flat, changed)
                    decision[survivors[~doomed_extra]] = True
                else:
                    decision[survivors] = True
                layer_of = np.full(len(refs), -1, dtype=np.intp)
                layer_of[survivors] = offset + np.arange(count)
            locations, variables = _unpack_key(key, self.n_instances)
            context = _KeyContext(key, locations, variables)
            contexts.append(context)
            positions = np.flatnonzero(decision)
            if len(positions):
                cand = np.fromiter(
                    (refs[p][2] for p in positions.tolist()),
                    dtype=np.intp, count=len(positions),
                )
                stored[cand] = True
                zone_layer[cand] = layer_of[positions]
                for index in cand.tolist():
                    zone_context[index] = context

        # tag-ordered walk over the stored candidates only: assemble the
        # frontier states and evaluate the query spec in scalar visit order
        spec = self.spec
        goal_tag = None
        for index in np.flatnonzero(stored).tolist():
            context = zone_context[index]
            zone = stack.layer_dbm(int(zone_layer[index]))
            context.pending.append(zone)
            tag = (int(parents[index]), int(plans[index]))
            state = SymbolicState(
                context.locations, context.variables, zone, context.key
            )
            self.unassigned.append((tag, context.key, state))
            if spec.kind == "goal":
                if goal_tag is None and spec.predicate(state):
                    goal_tag = tag
            elif spec.kind == "sup":
                if spec.condition is None or spec.condition.possibly(state):
                    raw_bound = zone.upper_bound(spec.clock_id)
                    if self.sup_best is None or raw_bound > self.sup_best[0]:
                        self.sup_best = (raw_bound, tag)

        for context in contexts:
            if context.pending:
                federation = self.passed.get(context.key)
                if federation is None:
                    federation = Federation(self.dim)
                    self.passed[context.key] = federation
                federation.add_many_uncovered(context.pending)
        if stack is not None:
            stack.discard()
        _send(self.write_fd, ("decided", parents, plans, stored, folded_mask,
                              goal_tag, self.sup_best))

    # -------------------------------------------------------------- stealing
    def _ship(self, seqs, assigned) -> None:
        # a ship can ask for seqs assigned at the end of the previous round,
        # which normally travel with the next expand -- so the coordinator
        # delivers them here instead (and sends the expand an empty list)
        self._install(assigned)
        shipped = []
        for seq in seqs:
            key, state = self.frontier.pop(seq)
            # the zone stays in this shard's federation (coverage needs it);
            # the thief gets a copy of the extrapolated matrix
            shipped.append((seq, key, state.zone.m.copy()))
        _send(self.write_fd, ("shipped", shipped))


class _Handle:
    """Coordinator-side record of one forked shard."""

    __slots__ = ("rank", "pid", "read_fd", "write_fd")

    def __init__(self, rank, pid, read_fd, write_fd):
        self.rank = rank
        self.pid = pid
        self.read_fd = read_fd
        self.write_fd = write_fd


class ShardedExplorer(Explorer):
    """The :class:`Explorer` facade over the sharded round protocol.

    Entry points (``sup``, ``check``, ``count_states``) behave exactly like
    the scalar engine's: the overridden :meth:`explore` runs the distributed
    search and then calls the entry point's visit callback once, on the
    replayed goal (or supremum) state, so verdicts, traces and results flow
    through the unmodified scalar post-processing.  Callers that pass a raw
    ``visit`` callable (``reachable_discrete_states``) fall back to the
    scalar engine transparently, as does any configuration sharding cannot
    honour (non-bfs order, no inclusion checking, fewer than two workers, no
    ``os.fork``).
    """

    def __init__(
        self,
        network: CompiledNetwork,
        semantics: SemanticsOptions | None = None,
        search: SearchOptions | None = None,
    ):
        super().__init__(network, semantics, search)
        #: whole-exploration restarts after a worker crash (supervision
        #: metadata, deliberately not part of ExplorationStatistics)
        self.restarts = 0
        self._shard_query = None
        # the ample-set proviso reads the passed list mid-expansion; under
        # the level-synchronous protocol that read would see a stale shard-
        # local prefix, so the reduction stays off (docs/performance.md)
        self._por = False

    # ------------------------------------------------------------ entry points
    def _check_ef(self, query):
        self._shard_query = ("ef", query)
        try:
            return super()._check_ef(query)
        finally:
            self._shard_query = None

    def _check_ag(self, query):
        self._shard_query = ("ag", query)
        try:
            return super()._check_ag(query)
        finally:
            self._shard_query = None

    def sup(self, query):
        self._shard_query = ("sup", query)
        try:
            return super().sup(query)
        finally:
            self._shard_query = None

    # ------------------------------------------------------------ dispatch
    def _build_spec(self, visit) -> _EvalSpec | None:
        search = self.search
        if (
            search.shard_workers < 2
            or search.order != "bfs"
            or not search.inclusion_checking
            or not hasattr(os, "fork")
        ):
            return None
        if self._shard_query is None:
            # a raw visit callback cannot cross the fork; pure exploration can
            return None if visit is not None else _EvalSpec("count")
        kind, query = self._shard_query
        if kind == "ef":
            return _EvalSpec(
                "goal", BoundFormula(query.formula, self.network).possibly
            )
        if kind == "ag":
            return _EvalSpec(
                "goal",
                BoundFormula(query.formula.negate(), self.network).possibly,
            )
        clock_id = self.network.clock_id(query.clock)
        condition = (
            BoundFormula(query.condition, self.network)
            if query.condition is not None
            else None
        )
        return _EvalSpec("sup", None, clock_id, condition)

    def explore(self, visit=None) -> ExplorationStatistics:
        spec = self._build_spec(visit)
        if spec is None:
            return super().explore(visit)
        last_crash = None
        for attempt in (1, 2):
            try:
                return self._explore_sharded(spec, visit, attempt)
            except _ShardFatal as fatal:
                raise fatal.error.with_traceback(None) from None
            except _ShardCrash as crash:
                self.restarts += 1
                last_crash = crash
        raise AnalysisError(
            f"sharded exploration crashed twice ({last_crash}); "
            "the worker fleet could not be supervised back to health"
        )

    # ------------------------------------------------------------ coordinator
    def _explore_sharded(self, spec, visit, attempt) -> ExplorationStatistics:
        options = self.search
        workers = options.shard_workers
        record_traces = options.record_traces
        stats = ExplorationStatistics(search_order="bfs")
        stats.shard_workers = workers
        stats.start_timer()

        initial = self._canonical(self.generator.initial_state(), stats)
        self.generator.extrapolate(initial.zone)
        root_key = initial.discrete_bytes()
        stats.states_stored = 1
        stats.peak_waiting = 1

        if spec.kind == "goal" and spec.predicate(initial):
            if visit is not None:
                visit(initial, _SearchNode(initial, None, None))
            stats.termination = "goal"
            stats.stop_timer()
            return stats
        root_sup = None
        if spec.kind == "sup" and (
            spec.condition is None or spec.condition.possibly(initial)
        ):
            root_sup = initial.zone.upper_bound(spec.clock_id)

        deadline = (
            time.perf_counter() + options.max_seconds
            if options.max_seconds is not None
            else None
        )
        if options.deadline is not None:
            deadline = (
                options.deadline if deadline is None
                else min(deadline, options.deadline)
            )
        max_states = options.max_states

        # warm the fault-injection module before forking so every worker
        # inherits it instead of re-importing on its first expand (imported
        # lazily here: repro.sweep pulls in the analysis layer, which would
        # be a circular import at module scope)
        from repro.sweep.faults import maybe_inject  # noqa: F401

        pool = None
        handles: list[_Handle] = []
        try:
            pool = SharedZonePool(workers, self.network.dim, rows=_OUTBOX_ROWS)
            for rank in range(workers):
                child_read, parent_write = os.pipe()
                parent_read, child_write = os.pipe()
                pid = os.fork()
                if pid == 0:
                    os.close(parent_write)
                    os.close(parent_read)
                    # drop the parent ends of earlier siblings so a crashed
                    # worker's pipe EOFs in the coordinator immediately
                    for handle in handles:
                        os.close(handle.read_fd)
                        os.close(handle.write_fd)
                    _ShardWorker(
                        rank, workers, child_read, child_write, self, spec,
                        pool, initial, root_key, attempt,
                    ).run()
                    os._exit(0)  # pragma: no cover - run() never returns
                os.close(child_read)
                os.close(child_write)
                handles.append(_Handle(rank, pid, parent_read, parent_write))

            return self._coordinate(
                spec, visit, stats, handles, initial, root_key, root_sup,
                deadline, max_states, record_traces,
            )
        finally:
            for handle in handles:
                for fd in (handle.write_fd, handle.read_fd):
                    try:
                        os.close(fd)
                    except OSError:
                        pass
                try:
                    os.kill(handle.pid, signal.SIGKILL)
                except OSError:
                    pass
                try:
                    os.waitpid(handle.pid, 0)
                except OSError:
                    pass
            if pool is not None:
                pool.close()

    def _reply(self, handle: _Handle, expected: str) -> tuple:
        message = _recv(handle.read_fd)
        if message[0] == "fatal":
            raise _ShardFatal(message[1])
        if message[0] != expected:  # pragma: no cover - protocol bug
            raise AnalysisError(
                f"shard protocol error: expected {expected!r}, "
                f"got {message[0]!r}"
            )
        return message

    def _coordinate(
        self, spec, visit, stats, handles, initial, root_key, root_sup,
        deadline, max_states, record_traces,
    ) -> ExplorationStatistics:
        workers = len(handles)
        #: seq -> (parent_seq, plan_index); seq 0 is the root
        tag_of_seq: list[tuple[int, int] | None] = [None]
        pending: list[list[int]] = [[] for _ in range(workers)]
        pending[_owner_of(root_key, workers)].append(0)
        next_seq = 1
        expanded = 0
        transitions = inclusions = folds = 0
        goal_tag = None
        worker_sup: list[tuple | None] = [None] * workers
        #: sequence numbers assigned at the end of the previous round, to be
        #: delivered with the next expand (aligned to each worker's
        #: tag-sorted unassigned list)
        assignments: list[list[int]] = [[] for _ in range(workers)]

        while True:
            if next_seq == expanded:
                break  # frontier empty: "exhausted" (the default)
            if max_states is not None and expanded >= max_states:
                stats.termination = "state-budget"
                break
            if deadline is not None and time.perf_counter() > deadline:
                stats.termination = "time-budget"
                break
            upto = next_seq if max_states is None else min(next_seq, max_states)

            # deterministic count-based work stealing: the coordinator knows
            # every shard's frontier, so victim, thief and the shipped seqs
            # are pure functions of the (deterministic) assignment history
            stolen: list[list] = [[] for _ in range(workers)]
            if workers > 1:
                counts = [
                    sum(1 for seq in queue if seq < upto) for queue in pending
                ]
                rich = max(range(workers), key=counts.__getitem__)
                poor = min(range(workers), key=counts.__getitem__)
                surplus = counts[rich] - counts[poor]
                if surplus > _STEAL_THRESHOLD:
                    share = surplus // 2
                    shipped_seqs = sorted(
                        seq for seq in pending[rich] if seq < upto
                    )[-share:]
                    if shipped_seqs:
                        # the ship also delivers the victim's outstanding
                        # sequence assignments (a shipped seq may have been
                        # assigned only at the end of the previous round, in
                        # which case it is not in the victim's frontier yet)
                        _send(handles[rich].write_fd,
                              ("ship", shipped_seqs, assignments[rich]))
                        assignments[rich] = []
                        reply = self._reply(handles[rich], "shipped")
                        stolen[poor] = reply[1]
                        moved = set(shipped_seqs)
                        pending[rich] = [
                            seq for seq in pending[rich] if seq not in moved
                        ]
                        pending[poor].extend(shipped_seqs)
                        stats.shard_steals += len(shipped_seqs)

            for handle in handles:
                _send(
                    handle.write_fd,
                    ("expand", upto, assignments[handle.rank],
                     stolen[handle.rank]),
                )
            expanded_replies = [
                self._reply(handle, "expanded") for handle in handles
            ]
            error = None
            for _tag, outgoing, worker_error, handoffs in expanded_replies:
                stats.shard_handoffs += handoffs
                if worker_error is not None and (
                    error is None or worker_error[0] < error[0]
                ):
                    error = worker_error
            for handle in handles:
                incoming = []
                for src, reply in enumerate(expanded_replies):
                    incoming.extend(
                        (src, *group)
                        for group in reply[1].get(handle.rank, ())
                    )
                _send(handle.write_fd, ("decide", incoming))
            decided = [self._reply(handle, "decided") for handle in handles]

            parents = np.concatenate([reply[1] for reply in decided])
            plans = np.concatenate([reply[2] for reply in decided])
            stored = np.concatenate([reply[3] for reply in decided])
            folded = np.concatenate([reply[4] for reply in decided])
            owner = np.concatenate([
                np.full(len(reply[1]), rank, dtype=np.intp)
                for rank, reply in enumerate(decided)
            ])
            for rank, reply in enumerate(decided):
                if reply[5] is not None and (
                    goal_tag is None or reply[5] < goal_tag
                ):
                    goal_tag = reply[5]
                if reply[6] is not None:
                    worker_sup[rank] = reply[6]

            if error is not None and (
                goal_tag is None or error[0] <= goal_tag[0]
            ):
                # the scalar engine raises while generating the successors of
                # seq error[0]; nothing after that expansion exists there
                raise error[1]

            order = np.lexsort((plans, parents))
            parents, plans = parents[order], plans[order]
            stored, folded, owner = stored[order], folded[order], owner[order]
            if goal_tag is not None:
                goal_parent, goal_plan = goal_tag
                keep = (parents < goal_parent) | (
                    (parents == goal_parent) & (plans <= goal_plan)
                )
                parents, plans = parents[keep], plans[keep]
                stored, folded, owner = stored[keep], folded[keep], owner[keep]
            transitions += int(parents.size)
            inclusions += int(parents.size - stored.sum())
            folds += int(folded.sum())

            assign_mask = stored
            if goal_tag is not None:
                # the goal state is stored but never enters the waiting list
                assign_mask = stored & ~(
                    (parents == goal_tag[0]) & (plans == goal_tag[1])
                )
            assignments = [[] for _ in range(workers)]
            for index in np.flatnonzero(assign_mask):
                tag_of_seq.append((int(parents[index]), int(plans[index])))
                rank = int(owner[index])
                assignments[rank].append(next_seq)
                pending[rank].append(next_seq)
                next_seq += 1

            expanded = upto
            for rank in range(workers):
                pending[rank] = [
                    seq for seq in pending[rank] if seq >= upto
                ]
            if goal_tag is not None:
                stats.termination = "goal"
                break

        # ---------------------------------------------------------- assembly
        stats.states_explored = (
            goal_tag[0] + 1 if goal_tag is not None else expanded
        )
        stats.states_stored = len(tag_of_seq) + (1 if goal_tag is not None else 0)
        stats.transitions = transitions
        stats.inclusions = inclusions
        stats.states_subsumed_lu = inclusions if self._lu_active else 0
        stats.keys_folded += folds
        stats.peak_waiting = _replay_peak(tag_of_seq, stats.states_explored)

        if goal_tag is not None and visit is not None:
            chain = _plan_chain(tag_of_seq, goal_tag[0]) + [goal_tag[1]]
            state, node = self._replay_chain(initial, chain, record_traces)
            visit(state, node)
        if spec.kind == "sup" and visit is not None:
            best = None  # (raw, tag or None-for-root)
            if root_sup is not None:
                best = (root_sup, None)
            for candidate in worker_sup:
                if candidate is None:
                    continue
                raw, tag = candidate
                if (
                    best is None
                    or raw > best[0]
                    or (raw == best[0] and best[1] is not None
                        and tag < best[1])
                ):
                    best = (raw, tag)
            if best is not None:
                if best[1] is None:
                    state, node = initial, _SearchNode(initial, None, None)
                else:
                    chain = _plan_chain(tag_of_seq, best[1][0]) + [best[1][1]]
                    state, node = self._replay_chain(
                        initial, chain, record_traces
                    )
                visit(state, node)
        stats.stop_timer()
        return stats

    def _replay_chain(self, initial, plan_chain, record_traces):
        """Re-fire *plan_chain* from the root through the scalar pipeline.

        Bit-identical to the worker-side generation (the batched kernels are
        layer-exact), so the materialised states match the shards' stored
        zones exactly -- this is how goal witnesses and supremum traces are
        reconstructed without keeping any zone rows per sequence number.
        """
        scratch = ExplorationStatistics()  # replay folds were already counted
        state = initial
        node = _SearchNode(initial, None, None)
        for plan_index in plan_chain:
            fired = self.generator.successors(
                state, with_labels=record_traces, extrapolate=False,
                plan_indices=(int(plan_index),),
            )
            label, child = fired[0]
            child = self._canonical(child, scratch)
            self.generator.extrapolate(child.zone)
            node = _SearchNode(
                child, node if record_traces else _UNRECORDED, label
            )
            state = child
        return state, node


def _plan_chain(tag_of_seq, seq) -> list[int]:
    """Plan indices firing the root-to-*seq* chain, in firing order."""
    plan_chain: list[int] = []
    while seq != 0:
        parent_seq, plan_index = tag_of_seq[seq]
        plan_chain.append(plan_index)
        seq = parent_seq
    plan_chain.reverse()
    return plan_chain


def _replay_peak(tag_of_seq, n_expanded) -> int:
    """Scalar ``peak_waiting`` from the stored-child tags.

    Replays the FIFO length evolution: each expansion pops one state and
    appends its stored children (the goal child, which never enters the
    waiting list, is deliberately absent from ``tag_of_seq``).
    """
    children: dict[int, int] = {}
    for seq in range(1, len(tag_of_seq)):
        parent_seq = tag_of_seq[seq][0]
        children[parent_seq] = children.get(parent_seq, 0) + 1
    length = peak = 1
    for seq in range(n_expanded):
        length -= 1
        count = children.get(seq, 0)
        if count:
            length += count
            if length > peak:
                peak = length
    return peak


def select_explorer(
    network: CompiledNetwork,
    semantics: SemanticsOptions | None = None,
    search: SearchOptions | None = None,
) -> Explorer:
    """The right engine for *search*: sharded when it can honour the options.

    Sharding requires at least two workers, breadth-first order, inclusion
    checking and ``os.fork``; anything else gets the scalar/block engine.
    (:class:`ShardedExplorer` additionally falls back per-call for entry
    points it cannot distribute, so selecting it is always safe.)
    """
    search = search or SearchOptions()
    if (
        search.shard_workers >= 2
        and search.order == "bfs"
        and search.inclusion_checking
        and hasattr(os, "fork")
    ):
        return ShardedExplorer(network, semantics, search)
    return Explorer(network, semantics, search)
