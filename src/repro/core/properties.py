"""State formulas and queries over the symbolic state space.

The query language mirrors the fragment of UPPAAL's requirement language the
paper uses:

* ``E<> φ``  — some reachable state satisfies ``φ`` (:class:`EF`),
* ``A[] φ``  — every reachable state satisfies ``φ`` (:class:`AG`),
* ``sup{condition}: clock`` — the supremum of a clock over all reachable
  states satisfying a condition (:class:`Sup`), used to extract worst-case
  response times in a single exploration instead of the paper's manual binary
  search.

State formulas are boolean combinations of three kinds of atomic
propositions:

* :class:`LocationProp` — an instance resides in a given location
  (``rstat_m.seen``),
* :class:`DataProp` — a boolean expression over integer variables
  (``rec == 0``),
* :class:`ClockProp` — a clock constraint (``rstat_m.y < 200000``).

Because a symbolic state contains many clock valuations, satisfaction comes
in two flavours: *possibly* (some valuation in the zone satisfies the
formula) and *certainly* (all valuations do).  ``A[] φ`` is violated when
some reachable symbolic state possibly satisfies ``¬φ``; ``E<> φ`` holds when
some reachable symbolic state possibly satisfies ``φ``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core import expressions as ex
from repro.core.guards import ClockConstraint, compile_guard
from repro.core.network import CompiledNetwork
from repro.core.successors import SymbolicState
from repro.util.errors import ModelError

__all__ = [
    "StateFormula",
    "LocationProp",
    "DataProp",
    "ClockProp",
    "And",
    "Or",
    "Not",
    "parse_atom",
    "formula_visibility",
    "BoundFormula",
    "Query",
    "EF",
    "AG",
    "Sup",
]


class StateFormula:
    """Base class for state formulas (boolean combinations of atoms)."""

    def __and__(self, other: "StateFormula") -> "StateFormula":
        return And(self, other)

    def __or__(self, other: "StateFormula") -> "StateFormula":
        return Or(self, other)

    def __invert__(self) -> "StateFormula":
        return Not(self)

    def negate(self) -> "StateFormula":
        """Return the logical negation (pushed down lazily via :class:`Not`)."""
        return Not(self)


@dataclass(frozen=True)
class LocationProp(StateFormula):
    """Atom: instance *instance* is in location *location* (``"Obs.seen"``)."""

    instance: str
    location: str

    def __str__(self) -> str:
        return f"{self.instance}.{self.location}"


@dataclass(frozen=True)
class DataProp(StateFormula):
    """Atom: a boolean expression over integer variables."""

    expression: ex.Expr

    @classmethod
    def parse(cls, text: str) -> "DataProp":
        return cls(ex.parse_expression(text))

    def __str__(self) -> str:
        return str(self.expression)


@dataclass(frozen=True)
class ClockProp(StateFormula):
    """Atom: a clock constraint such as ``y < 200000`` or ``x - y <= 3``."""

    constraint: ClockConstraint

    @classmethod
    def parse(cls, text: str, clocks: Iterable[str]) -> "ClockProp":
        guard = compile_guard(text, clocks)
        if len(guard.clock_constraints) != 1 or not (
            isinstance(guard.data, ex.BoolConst) and guard.data.value
        ):
            raise ModelError(f"expected a single clock constraint, got {text!r}")
        return cls(guard.clock_constraints[0])

    def __str__(self) -> str:
        return str(self.constraint)


@dataclass(frozen=True)
class And(StateFormula):
    left: StateFormula
    right: StateFormula

    def __str__(self) -> str:
        return f"({self.left} && {self.right})"


@dataclass(frozen=True)
class Or(StateFormula):
    left: StateFormula
    right: StateFormula

    def __str__(self) -> str:
        return f"({self.left} || {self.right})"


@dataclass(frozen=True)
class Not(StateFormula):
    operand: StateFormula

    def __str__(self) -> str:
        return f"!({self.operand})"


def parse_atom(text: str, network: CompiledNetwork) -> StateFormula:
    """Parse an atomic proposition string against a compiled network.

    ``"Inst.loc"`` becomes a :class:`LocationProp` when ``loc`` names a
    location of instance ``Inst``; expressions containing clock names become
    :class:`ClockProp`; everything else becomes :class:`DataProp`.
    """
    stripped = text.strip()
    if "." in stripped and all(part.isidentifier() for part in stripped.split(".", 1)):
        instance, location = stripped.split(".", 1)
        for compiled in network.instances:
            if compiled.name == instance and location in compiled.location_index:
                return LocationProp(instance, location)
    expr = ex.parse_expression(stripped)
    if expr.variables() & set(network.clock_index):
        guard = compile_guard(expr, network.clock_index)
        if len(guard.clock_constraints) == 1 and isinstance(guard.data, ex.BoolConst):
            return ClockProp(guard.clock_constraints[0])
        raise ModelError(f"cannot interpret {text!r} as a single clock constraint")
    return DataProp(expr)


def formula_visibility(
    formula: StateFormula, network: CompiledNetwork
) -> tuple[set[int], set[int], set[int]]:
    """The (instance, variable, clock) index sets a formula observes.

    Feeds :meth:`repro.core.successors.SuccessorGenerator.set_visibility`:
    the partial-order reduction may only commute plans that are invisible to
    the active query, i.e. that move none of these instances, write none of
    these variables and reset none of these clocks.
    """
    instances: set[int] = set()
    variables: set[int] = set()
    clocks: set[int] = set()
    var_index = network.variable_index

    def walk(node: StateFormula) -> None:
        if isinstance(node, (And, Or)):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, Not):
            walk(node.operand)
        elif isinstance(node, LocationProp):
            instance, _location = network.location_id(node.instance, node.location)
            instances.add(instance)
        elif isinstance(node, DataProp):
            variables.update(
                var_index[name]
                for name in node.expression.variables()
                if name in var_index
            )
        elif isinstance(node, ClockProp):
            constraint = node.constraint
            clocks.add(network.clock_id(constraint.clock))
            if constraint.other is not None:
                clocks.add(network.clock_id(constraint.other))
            variables.update(
                var_index[name]
                for name in constraint.rhs.variables()
                if name in var_index
            )
        else:
            raise ModelError(f"unsupported formula node {node!r}")

    walk(formula)
    return instances, variables, clocks


# ---------------------------------------------------------------------------
# Literal / DNF machinery
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _Literal:
    atom: StateFormula
    positive: bool


def _to_nnf(formula: StateFormula, positive: bool) -> StateFormula:
    """Push negations down to the atoms."""
    if isinstance(formula, Not):
        return _to_nnf(formula.operand, not positive)
    if isinstance(formula, And):
        left = _to_nnf(formula.left, positive)
        right = _to_nnf(formula.right, positive)
        return And(left, right) if positive else Or(left, right)
    if isinstance(formula, Or):
        left = _to_nnf(formula.left, positive)
        right = _to_nnf(formula.right, positive)
        return Or(left, right) if positive else And(left, right)
    # atom
    return formula if positive else Not(formula)


def _to_dnf(formula: StateFormula) -> list[list[_Literal]]:
    """Convert an NNF formula into a list of conjunctive clauses of literals."""
    if isinstance(formula, Not):
        return [[_Literal(formula.operand, False)]]
    if isinstance(formula, (LocationProp, DataProp, ClockProp)):
        return [[_Literal(formula, True)]]
    if isinstance(formula, Or):
        return _to_dnf(formula.left) + _to_dnf(formula.right)
    if isinstance(formula, And):
        left = _to_dnf(formula.left)
        right = _to_dnf(formula.right)
        return [a + b for a in left for b in right]
    raise ModelError(f"unsupported formula node {formula!r}")


_NEGATED_OP = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!="}


class BoundFormula:
    """A state formula bound to a compiled network, ready for evaluation."""

    def __init__(self, formula: StateFormula, network: CompiledNetwork):
        self.formula = formula
        self.network = network
        self._dnf = _to_dnf(_to_nnf(formula, True))
        self._clauses = [self._compile_clause(clause) for clause in self._dnf]

    # each compiled clause: (discrete_checks, zone_constraints)
    #   discrete_checks: list of callables (locations, variables) -> bool
    #   zone_constraints: list of (ClockConstraint-like application data)
    def _compile_clause(self, clause: Sequence[_Literal]):
        net = self.network
        discrete_checks = []
        clock_parts: list[tuple[ClockConstraint, bool]] = []
        for literal in clause:
            atom = literal.atom
            if isinstance(atom, LocationProp):
                inst_idx, loc_idx = net.location_id(atom.instance, atom.location)
                if literal.positive:
                    discrete_checks.append(
                        lambda locs, vars_, i=inst_idx, l=loc_idx: locs[i] == l
                    )
                else:
                    discrete_checks.append(
                        lambda locs, vars_, i=inst_idx, l=loc_idx: locs[i] != l
                    )
            elif isinstance(atom, DataProp):
                fn = ex.compile_bool_expr(atom.expression, net.variable_index)
                if literal.positive:
                    discrete_checks.append(lambda locs, vars_, f=fn: bool(f(vars_)))
                else:
                    discrete_checks.append(lambda locs, vars_, f=fn: not f(vars_))
            elif isinstance(atom, ClockProp):
                constraint = atom.constraint
                if not literal.positive:
                    if constraint.op == "==":
                        raise ModelError(
                            "negated clock equality is not supported in state formulas"
                        )
                    constraint = ClockConstraint(
                        constraint.clock,
                        _NEGATED_OP[constraint.op],
                        constraint.rhs,
                        constraint.other,
                    )
                clock_parts.append((constraint, literal.positive))
            else:
                raise ModelError(f"unsupported atom {atom!r}")
        return discrete_checks, [c for c, _ in clock_parts]

    # -- evaluation -----------------------------------------------------------
    def possibly(self, state: SymbolicState) -> bool:
        """True when some clock valuation of *state* satisfies the formula."""
        net = self.network
        for discrete_checks, clock_constraints in self._clauses:
            if not all(check(state.locations, state.variables) for check in discrete_checks):
                continue
            if not clock_constraints:
                return True
            zone = state.zone.copy()
            env = net.variable_valuation(state.variables)
            satisfied = True
            for constraint in clock_constraints:
                if not constraint.apply(zone, net.clock_index, env):
                    satisfied = False
                    break
            zone.discard()
            if satisfied:
                return True
        return False

    def certainly(self, state: SymbolicState) -> bool:
        """True when every clock valuation of *state* satisfies the formula."""
        negated = BoundFormula(Not(self.formula), self.network)
        return not negated.possibly(state)

    def max_clock_constant(self) -> dict[str, int]:
        """Clock -> largest constant mentioned by the formula (for extrapolation)."""
        out: dict[str, int] = {}
        domains = {
            name: self.network.variable_domains[idx]
            for name, idx in self.network.variable_index.items()
        }
        for _checks, clock_constraints in self._clauses:
            for constraint in clock_constraints:
                value = constraint.max_constant(domains)
                out[constraint.clock] = max(out.get(constraint.clock, 0), value)
                if constraint.other:
                    out[constraint.other] = max(out.get(constraint.other, 0), value)
        return out

    def __str__(self) -> str:
        return str(self.formula)


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Query:
    """Base class of queries handed to the reachability engine."""

    formula: StateFormula

    def bind(self, network: CompiledNetwork) -> BoundFormula:
        bound = BoundFormula(self.formula, network)
        for clock, constant in bound.max_clock_constant().items():
            network.register_query_constant(clock, constant)
        return bound


@dataclass(frozen=True)
class EF(Query):
    """``E<> formula`` — reachability of a state satisfying the formula."""

    def __str__(self) -> str:
        return f"E<> {self.formula}"


@dataclass(frozen=True)
class AG(Query):
    """``A[] formula`` — the formula holds in every reachable state."""

    def __str__(self) -> str:
        return f"A[] {self.formula}"


@dataclass(frozen=True)
class Sup:
    """``sup{condition}: clock`` — supremum of a clock over reachable states.

    ``condition`` may be ``None`` to range over the whole reachable state
    space.  ``ceiling`` raises the extrapolation constant of the clock so
    that suprema up to ``ceiling`` are exact; values above it are reported as
    "at least ceiling" (the analysis cannot distinguish them from unbounded).
    """

    clock: str
    condition: StateFormula | None = None
    ceiling: int | None = None

    def __str__(self) -> str:
        condition = f"{{{self.condition}}}" if self.condition is not None else ""
        return f"sup{condition}: {self.clock}"
