"""Clock constraints, guards and invariants.

A *guard* in this library is the conjunction of

* a finite set of :class:`ClockConstraint` (comparisons of a clock, or of a
  difference of two clocks, against an integer expression), and
* a boolean *data* expression over integer variables.

UPPAAL imposes the same separation: clock constraints may only occur
positively and conjunctively.  :func:`compile_guard` performs the split from
a single parsed expression such as ``"rec > 0 && setvolume == 0 && x <= D"``
given the set of clock names, and rejects guards in which clock constraints
occur under ``!`` or ``||``.

*Invariants* are restricted to upper bounds (``<`` / ``<=``) on clocks, as in
UPPAAL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core import expressions as ex
from repro.core.dbm import DBM, bound
from repro.util.errors import ModelError
from repro.util.intervals import IntInterval

__all__ = [
    "ClockConstraint",
    "Guard",
    "Invariant",
    "TRUE_GUARD",
    "TRUE_INVARIANT",
    "compile_guard",
    "compile_invariant",
]

_UPPER_OPS = ("<", "<=")
_ALL_OPS = ("<", "<=", "==", ">=", ">")


@dataclass(frozen=True)
class ClockConstraint:
    """A constraint ``clock - other ⋈ rhs`` (``other`` may be ``None``).

    ``rhs`` is an integer expression over variables and constants; it is
    evaluated against the variable valuation at the moment the constraint is
    applied to a zone, which is how data-dependent invariants such as
    ``x <= D`` (Fig. 5 of the paper) are supported.
    """

    clock: str
    op: str
    rhs: ex.Expr
    other: str | None = None

    def __post_init__(self):
        if self.op not in _ALL_OPS:
            raise ModelError(f"unsupported clock comparison operator {self.op!r}")

    def rename(self, mapping: Mapping[str, str]) -> "ClockConstraint":
        """Rename clocks and variables according to *mapping*."""
        return ClockConstraint(
            clock=mapping.get(self.clock, self.clock),
            op=self.op,
            rhs=self.rhs.rename(mapping),
            other=mapping.get(self.other, self.other) if self.other else None,
        )

    def raw_constraints(
        self, clock_index: Mapping[str, int], env: Mapping[str, int]
    ) -> list[tuple[int, int, int]]:
        """Translate into raw DBM constraints ``(i, j, raw_bound)``.

        ``clock_index`` maps clock names to DBM indices, ``env`` provides the
        current values of integer variables for evaluating ``rhs``.
        """
        try:
            i = clock_index[self.clock]
        except KeyError as exc:
            raise ModelError(f"unknown clock {self.clock!r} in constraint") from exc
        j = 0
        if self.other is not None:
            try:
                j = clock_index[self.other]
            except KeyError as exc:
                raise ModelError(f"unknown clock {self.other!r} in constraint") from exc
        c = int(self.rhs.evaluate(env))
        if self.op == "<":
            return [(i, j, bound(c, strict=True))]
        if self.op == "<=":
            return [(i, j, bound(c))]
        if self.op == ">":
            return [(j, i, bound(-c, strict=True))]
        if self.op == ">=":
            return [(j, i, bound(-c))]
        # ==
        return [(i, j, bound(c)), (j, i, bound(-c))]

    def apply(self, zone: DBM, clock_index: Mapping[str, int], env: Mapping[str, int]) -> bool:
        """Conjoin the constraint onto *zone*; return ``False`` if it empties it."""
        for i, j, raw in self.raw_constraints(clock_index, env):
            if not zone.constrain(i, j, raw):
                return False
        return True

    def max_constant(self, domains: Mapping[str, IntInterval]) -> int:
        """Upper bound on the absolute constant this constraint compares against."""
        interval = self.rhs.bounds(domains)
        return max(abs(interval.lo), abs(interval.hi))

    def is_upper_bound(self) -> bool:
        """True when the constraint only bounds the clock from above."""
        return self.op in _UPPER_OPS

    def is_lower_bound(self) -> bool:
        """True when the constraint only bounds the clock from below."""
        return self.op in (">", ">=")

    def variables(self) -> frozenset[str]:
        return self.rhs.variables()

    def __str__(self) -> str:
        left = self.clock if self.other is None else f"{self.clock} - {self.other}"
        return f"{left} {self.op} {self.rhs}"


@dataclass(frozen=True)
class Guard:
    """A conjunction of clock constraints and one boolean data expression."""

    clock_constraints: tuple[ClockConstraint, ...] = ()
    data: ex.Expr = ex.BoolConst(True)

    def rename(self, mapping: Mapping[str, str]) -> "Guard":
        return Guard(
            tuple(c.rename(mapping) for c in self.clock_constraints),
            self.data.rename(mapping),
        )

    def data_satisfied(self, env: Mapping[str, int]) -> bool:
        """Evaluate the data part against a variable valuation."""
        return bool(self.data.evaluate(env))

    def apply_clocks(
        self, zone: DBM, clock_index: Mapping[str, int], env: Mapping[str, int]
    ) -> bool:
        """Conjoin every clock constraint onto *zone*."""
        for constraint in self.clock_constraints:
            if not constraint.apply(zone, clock_index, env):
                return False
        return True

    @property
    def is_trivially_true(self) -> bool:
        """True for the guard that accepts everything."""
        return (
            not self.clock_constraints and isinstance(self.data, ex.BoolConst) and self.data.value
        )

    def has_clock_constraints(self) -> bool:
        return bool(self.clock_constraints)

    def variables(self) -> frozenset[str]:
        names = set(self.data.variables())
        for constraint in self.clock_constraints:
            names |= constraint.variables()
        return frozenset(names)

    def __str__(self) -> str:
        parts = [str(c) for c in self.clock_constraints]
        if not (isinstance(self.data, ex.BoolConst) and self.data.value):
            parts.append(str(self.data))
        return " && ".join(parts) if parts else "true"


#: The guard that is always satisfied.
TRUE_GUARD = Guard()


@dataclass(frozen=True)
class Invariant:
    """A conjunction of upper-bound clock constraints attached to a location."""

    constraints: tuple[ClockConstraint, ...] = ()

    def __post_init__(self):
        for constraint in self.constraints:
            if not constraint.is_upper_bound():
                raise ModelError(
                    f"invariants may only contain upper bounds on clocks, got {constraint}"
                )

    def rename(self, mapping: Mapping[str, str]) -> "Invariant":
        return Invariant(tuple(c.rename(mapping) for c in self.constraints))

    def apply(self, zone: DBM, clock_index: Mapping[str, int], env: Mapping[str, int]) -> bool:
        """Conjoin the invariant onto *zone*; return ``False`` if it empties it."""
        for constraint in self.constraints:
            if not constraint.apply(zone, clock_index, env):
                return False
        return True

    @property
    def is_trivially_true(self) -> bool:
        return not self.constraints

    def variables(self) -> frozenset[str]:
        names: set[str] = set()
        for constraint in self.constraints:
            names |= constraint.variables()
        return frozenset(names)

    def __str__(self) -> str:
        return " && ".join(str(c) for c in self.constraints) if self.constraints else "true"


#: The empty invariant.
TRUE_INVARIANT = Invariant()


# ---------------------------------------------------------------------------
# Guard compilation: splitting parsed expressions into clock and data parts
# ---------------------------------------------------------------------------

def _references_clock(expr: ex.Expr, clocks: frozenset[str]) -> bool:
    return bool(expr.variables() & clocks)


def _as_clock_constraint(cmp: ex.Compare, clocks: frozenset[str]) -> ClockConstraint:
    """Convert a comparison referencing clocks into a :class:`ClockConstraint`."""
    left, right, op = cmp.left, cmp.right, cmp.op

    def clock_part(side: ex.Expr) -> tuple[str, str | None] | None:
        """Recognise ``clock`` or ``clock - clock`` patterns."""
        if isinstance(side, ex.VarRef) and side.name in clocks:
            return side.name, None
        if (
            isinstance(side, ex.Binary)
            and side.op == "-"
            and isinstance(side.left, ex.VarRef)
            and isinstance(side.right, ex.VarRef)
            and side.left.name in clocks
            and side.right.name in clocks
        ):
            return side.left.name, side.right.name
        return None

    flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "=="}

    left_clock = clock_part(left)
    right_clock = clock_part(right)
    if left_clock and not _references_clock(right, clocks):
        return ClockConstraint(left_clock[0], op, right, other=left_clock[1])
    if right_clock and not _references_clock(left, clocks):
        return ClockConstraint(right_clock[0], flip[op], left, other=right_clock[1])
    raise ModelError(
        f"unsupported clock constraint {cmp}: expected 'clock ⋈ expr', "
        "'expr ⋈ clock' or 'clock - clock ⋈ expr'"
    )


def _split(expr: ex.Expr, clocks: frozenset[str]) -> tuple[list[ClockConstraint], list[ex.Expr]]:
    """Recursively split a conjunction into clock constraints and data conjuncts."""
    if not _references_clock(expr, clocks):
        return [], [expr]
    if isinstance(expr, ex.Logical) and expr.op == "&&":
        left_clocks, left_data = _split(expr.left, clocks)
        right_clocks, right_data = _split(expr.right, clocks)
        return left_clocks + right_clocks, left_data + right_data
    if isinstance(expr, ex.Compare):
        return [_as_clock_constraint(expr, clocks)], []
    raise ModelError(
        f"clock constraints may only appear as positive conjuncts, offending guard part: {expr}"
    )


def compile_guard(guard: "str | ex.Expr | Guard | None", clocks: Iterable[str]) -> Guard:
    """Compile a guard specification into a :class:`Guard`.

    ``guard`` may be ``None`` (no guard), an already-built :class:`Guard`, a
    parsed expression, or a string to parse.  ``clocks`` is the set of names
    to treat as clocks when splitting.
    """
    if guard is None:
        return TRUE_GUARD
    if isinstance(guard, Guard):
        return guard
    expr = ex.as_expr(guard)
    clock_set = frozenset(clocks)
    clock_constraints, data_parts = _split(expr, clock_set)
    data: ex.Expr = ex.BoolConst(True)
    for part in data_parts:
        if isinstance(part, ex.BoolConst) and part.value:
            continue
        data = (
            part if (isinstance(data, ex.BoolConst) and data.value)
            else ex.Logical("&&", data, part)
        )
    return Guard(tuple(clock_constraints), data)


def compile_invariant(
    invariant: "str | ex.Expr | Invariant | None", clocks: Iterable[str]
) -> Invariant:
    """Compile an invariant specification into an :class:`Invariant`."""
    if invariant is None:
        return TRUE_INVARIANT
    if isinstance(invariant, Invariant):
        return invariant
    guard = compile_guard(invariant, clocks)
    if not (isinstance(guard.data, ex.BoolConst) and guard.data.value):
        raise ModelError(
            f"invariants may not contain data constraints, got {guard.data}"
        )
    return Invariant(guard.clock_constraints)
