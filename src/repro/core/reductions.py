"""The unified state-space reduction configuration.

One frozen :class:`ReductionConfig` names the three exactness-preserving
reductions of the zone engine, under the same canonical field names
everywhere a reduction can be switched -- :class:`~repro.core.reachability.
SearchOptions`, :class:`~repro.arch.analysis.TimedAutomataSettings`,
:class:`~repro.portfolio.anytime.PortfolioBudget`,
:class:`~repro.sweep.cells.SweepCell` settings, the ``repro-sweep`` /
``repro-diffcheck`` ``--reductions`` flags and the serve ``/analyze``
request schema:

* ``lu_extrapolation`` -- per-clock lower/upper-bound (LU) zone
  extrapolation instead of the single maximal-constant grid;
* ``partial_order`` -- ample-set partial-order reduction over the memoised
  firing plans (commuting zero-delay interleavings are explored once);
* ``symmetry`` -- canonicalisation of discrete keys under verified
  automorphisms of replicated architecture units.

Every reduction defaults *on with fallback*: an enabled reduction degrades
to the unreduced behaviour whenever its soundness preconditions do not hold
(e.g. LU extrapolation and symmetry fall back when traces are recorded for
witness concretisation, symmetry is inert when the compiled network carries
no verified automorphism).  ``docs/reductions.md`` states the soundness
argument of each reduction and the exact fallback rules.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.util.errors import ModelError

__all__ = ["REDUCTION_FIELDS", "ReductionConfig"]

#: canonical reduction names, in the order they are documented
REDUCTION_FIELDS = ("lu_extrapolation", "partial_order", "symmetry")


@dataclass(frozen=True)
class ReductionConfig:
    """Which state-space reductions the exploration may apply.

    Frozen and primitives-only, so a config crosses process (spawn) and
    JSON (serve) boundaries unchanged and can ride inside frozen settings
    dataclasses.
    """

    #: per-clock lower/upper-bound zone extrapolation (Extra_LU); falls back
    #: to maximal-constant extrapolation when traces are recorded
    lu_extrapolation: bool = True
    #: ample-set partial-order reduction over commuting zero-delay firings
    partial_order: bool = True
    #: discrete-key canonicalisation under verified replication
    #: automorphisms; falls back to identity when traces are recorded or the
    #: network carries no symmetry specification
    symmetry: bool = True

    def __post_init__(self):
        for name in REDUCTION_FIELDS:
            if not isinstance(getattr(self, name), bool):
                raise ModelError(f"reduction flag {name!r} must be a bool")

    @property
    def any_enabled(self) -> bool:
        return any(getattr(self, name) for name in REDUCTION_FIELDS)

    @classmethod
    def none(cls) -> "ReductionConfig":
        """The unreduced configuration (every reduction off)."""
        return cls(**{name: False for name in REDUCTION_FIELDS})

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in REDUCTION_FIELDS}

    @classmethod
    def from_dict(cls, data: dict) -> "ReductionConfig":
        if not isinstance(data, dict):
            raise ModelError("reductions must be an object of boolean flags")
        unknown = sorted(set(data) - set(REDUCTION_FIELDS))
        if unknown:
            raise ModelError(
                f"unknown reduction(s): {', '.join(unknown)} "
                f"(expected {', '.join(REDUCTION_FIELDS)})"
            )
        return cls(**{name: bool(value) for name, value in data.items()})

    @classmethod
    def parse(cls, spec: "str | dict | ReductionConfig | None") -> "ReductionConfig":
        """Parse any of the accepted reduction specifications.

        ``None`` and ``"all"`` mean every reduction on, ``"none"`` means the
        unreduced configuration, a comma-separated string of canonical names
        (``"lu_extrapolation,symmetry"``) enables exactly those, a dict maps
        canonical names to booleans, and an existing config passes through.
        """
        if spec is None:
            return cls()
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, dict):
            return cls.from_dict(spec)
        if not isinstance(spec, str):
            raise ModelError(f"cannot parse reductions from {type(spec).__name__}")
        text = spec.strip().lower()
        if text in ("all", ""):
            return cls()
        if text == "none":
            return cls.none()
        names = [part.strip() for part in text.split(",") if part.strip()]
        unknown = sorted(set(names) - set(REDUCTION_FIELDS))
        if unknown:
            raise ModelError(
                f"unknown reduction(s): {', '.join(unknown)} "
                f"(expected {', '.join(REDUCTION_FIELDS)}, 'all' or 'none')"
            )
        return cls(**{name: name in names for name in REDUCTION_FIELDS})

    def spec(self) -> str:
        """The canonical ``--reductions`` string of this config."""
        enabled = [name for name in REDUCTION_FIELDS if getattr(self, name)]
        if len(enabled) == len(REDUCTION_FIELDS):
            return "all"
        if not enabled:
            return "none"
        return ",".join(enabled)


# keep REDUCTION_FIELDS and the dataclass fields in lockstep
assert REDUCTION_FIELDS == tuple(f.name for f in fields(ReductionConfig))
