"""Symbolic (zone-graph) semantics of a compiled network of timed automata.

A symbolic state is a triple ``(location vector, variable vector, zone)``
where the zone is a canonical DBM that is *delay-closed*: it contains every
clock valuation reachable from an entry valuation by letting time pass as far
as the invariants (and urgency) allow.  This is the standard UPPAAL
exploration representation.

:class:`SuccessorGenerator` produces, for a symbolic state, all discrete
successors together with :class:`TransitionLabel` records used for traces.
Supported synchronisation semantics:

* internal (``tau``) edges,
* binary channels: one sender and one receiver from different instances,
* broadcast channels: one sender plus *all* instances with an enabled
  receiving edge (receivers may not have clock guards),
* urgent channels: time may not elapse while a synchronisation on the channel
  is enabled (this implements the paper's ``hurry!`` greedy-behaviour trick),
* urgent and committed locations.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterable, Sequence

from repro.core.dbm import DBM, bound
from repro.core.network import CompiledEdge, CompiledNetwork
from repro.util.errors import ModelError

__all__ = ["SymbolicState", "TransitionLabel", "SuccessorGenerator", "SemanticsOptions"]


@dataclass(frozen=True)
class SymbolicState:
    """A symbolic state of the zone graph."""

    locations: tuple[int, ...]
    variables: tuple[int, ...]
    zone: DBM

    def discrete_key(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """The discrete part, used to index the passed/waiting lists."""
        return (self.locations, self.variables)

    def key(self) -> tuple:
        """A full hashable key including the zone."""
        return (self.locations, self.variables, self.zone.key())

    def describe(self, network: CompiledNetwork) -> str:
        """Human-readable one-line description."""
        locations = ", ".join(network.location_vector_names(self.locations))
        variables = ", ".join(
            f"{name}={value}"
            for name, value in zip(network.variable_names, self.variables)
            if value != 0
        )
        return f"<{locations}> {{{variables}}} {self.zone}"


@dataclass(frozen=True)
class TransitionLabel:
    """Description of the discrete transition taken between symbolic states.

    ``edges`` stores (instance name, edge object) pairs; the human-readable
    rendering is produced lazily by :meth:`__str__` so that label creation in
    the exploration inner loop stays cheap.
    """

    kind: str  # "internal" | "binary" | "broadcast"
    channel: str | None
    edges: tuple[tuple[str, object], ...]  # (instance name, Edge)

    def __str__(self) -> str:
        if self.kind == "internal":
            instance, edge = self.edges[0]
            return f"{instance}: {edge}"
        participants = "; ".join(f"{instance}: {edge}" for instance, edge in self.edges)
        return f"[{self.channel}] {participants}"


@dataclass
class SemanticsOptions:
    """Options controlling the symbolic semantics.

    extrapolation
        ``"max"`` (classical per-clock maximal-constant extrapolation,
        default), ``"lu"`` (lower/upper bound extrapolation -- currently the
        same bounds are used for L and U), or ``"none"`` (termination is then
        only guaranteed for models whose zone graph is finite without
        abstraction).
    check_ranges
        verify after every update that integer variables stay inside their
        declared domains (UPPAAL run-time semantics).
    """

    extrapolation: str = "max"
    check_ranges: bool = True

    def __post_init__(self):
        if self.extrapolation not in ("max", "lu", "none"):
            raise ModelError(f"unknown extrapolation mode {self.extrapolation!r}")


class SuccessorGenerator:
    """Computes initial and successor symbolic states of a compiled network."""

    def __init__(self, network: CompiledNetwork, options: SemanticsOptions | None = None):
        self.network = network
        self.options = options or SemanticsOptions()
        self._build_edge_tables()

    # ------------------------------------------------------------------ setup
    def _build_edge_tables(self) -> None:
        """Pre-sort outgoing edges of every location by synchronisation role."""
        net = self.network
        # internal[i][l]  -> list of edges
        # send[i][l]      -> {channel: [edges]}
        # recv[i][l]      -> {channel: [edges]}
        self._internal: list[list[list[CompiledEdge]]] = []
        self._send: list[list[dict[str, list[CompiledEdge]]]] = []
        self._recv: list[list[dict[str, list[CompiledEdge]]]] = []
        for instance in net.instances:
            internal_rows, send_rows, recv_rows = [], [], []
            for edges in instance.outgoing:
                internal, send, recv = [], {}, {}
                for edge in edges:
                    if edge.channel is None:
                        internal.append(edge)
                    elif edge.direction == "!":
                        send.setdefault(edge.channel.name, []).append(edge)
                    else:
                        recv.setdefault(edge.channel.name, []).append(edge)
                internal_rows.append(internal)
                send_rows.append(send)
                recv_rows.append(recv)
            self._internal.append(internal_rows)
            self._send.append(send_rows)
            self._recv.append(recv_rows)

    # ------------------------------------------------------------- basic helpers
    def _max_bounds(self) -> list[int]:
        return self.network.max_constants

    def _apply_constraints(
        self, zone: DBM, constraints: Iterable, variables: Sequence[int]
    ) -> bool:
        """Conjoin compiled clock constraints; returns False when empty."""
        for constraint in constraints:
            value = constraint.sign * int(constraint.rhs(variables))
            raw = 2 * value + (0 if constraint.strict else 1)
            if not zone.constrain(constraint.i, constraint.j, raw):
                return False
        return True

    def _apply_invariants(self, zone: DBM, locations: Sequence[int], variables: Sequence[int]) -> bool:
        for instance, loc in zip(self.network.instances, locations):
            if not self._apply_constraints(zone, instance.locations[loc].invariant, variables):
                return False
        return True

    def _is_urgent_discrete(self, locations: Sequence[int], variables: Sequence[int]) -> bool:
        """True when time may not elapse in this discrete state.

        Time is frozen when (i) some instance is in an urgent or committed
        location, or (ii) a synchronisation over an urgent channel is enabled
        (judged on data guards only -- clock guards are disallowed on urgent
        channels).
        """
        net = self.network
        for instance, loc in zip(net.instances, locations):
            location = instance.locations[loc]
            if location.urgent or location.committed:
                return True
        # urgent channel synchronisations
        for i, instance in enumerate(net.instances):
            send_table = self._send[i][locations[i]]
            for channel_name, edges in send_table.items():
                channel = net.channels[channel_name]
                if not channel.urgent:
                    continue
                if not any(edge.data_enabled(variables) for edge in edges):
                    continue
                if channel.kind == "broadcast":
                    return True  # broadcast senders never block
                # binary: need an enabled receiver in another instance
                for j, other in enumerate(net.instances):
                    if i == j:
                        continue
                    recv_edges = self._recv[j][locations[j]].get(channel_name, ())
                    if any(edge.data_enabled(variables) for edge in recv_edges):
                        return True
        return False

    def _committed_instances(self, locations: Sequence[int]) -> set[int]:
        out = set()
        for idx, (instance, loc) in enumerate(zip(self.network.instances, locations)):
            if instance.locations[loc].committed:
                out.add(idx)
        return out

    def _finalize(
        self,
        locations: tuple[int, ...],
        variables: tuple[int, ...],
        zone: DBM,
    ) -> SymbolicState | None:
        """Apply invariants, optional delay closure and extrapolation."""
        if not self._apply_invariants(zone, locations, variables):
            return None
        if not self._is_urgent_discrete(locations, variables):
            # ``up`` preserves the canonical form and ``constrain`` re-closes
            # incrementally, so no full closure is needed here.
            zone.up()
            if not self._apply_invariants(zone, locations, variables):
                return None
        mode = self.options.extrapolation
        if mode != "none":
            bounds_vector = self._max_bounds()
            if mode == "max":
                zone.extrapolate_max_bounds(bounds_vector)
            else:
                zone.extrapolate_lu_bounds(bounds_vector, bounds_vector)
        if zone.is_empty():
            return None
        return SymbolicState(locations, variables, zone)

    # --------------------------------------------------------------- initial state
    def initial_state(self) -> SymbolicState:
        """The delay-closed initial symbolic state."""
        net = self.network
        locations = net.initial_locations()
        variables = net.initial_variables
        zone = DBM.zero(net.dim)
        state = self._finalize(locations, variables, zone)
        if state is None:
            raise ModelError(
                "the initial state violates an invariant; the model admits no behaviour"
            )
        return state

    # ----------------------------------------------------------------- transitions
    def _fire(
        self,
        state: SymbolicState,
        participating: Sequence[CompiledEdge],
    ) -> SymbolicState | None:
        """Fire the given edges (already checked for data-enabledness)."""
        net = self.network
        zone = state.zone.copy()
        variables = state.variables

        # 1. clock guards of every participant against the *current* valuation
        for edge in participating:
            if not self._apply_constraints(zone, edge.clock_constraints, variables):
                return None

        # 2. variable updates, sender first then receivers (list order)
        new_variables = variables
        for edge in participating:
            if edge.update is not None:
                new_variables = edge.update(new_variables)
        if self.options.check_ranges and new_variables is not variables:
            net.check_variable_ranges(new_variables)

        # 3. clock resets (reset values are evaluated on the updated variables)
        for edge in participating:
            for clock, value_fn in edge.resets:
                zone.reset(clock, int(value_fn(new_variables)))

        # 4. move locations
        new_locations = list(state.locations)
        for edge in participating:
            new_locations[edge.instance] = edge.target
        new_locations = tuple(new_locations)

        return self._finalize(new_locations, tuple(new_variables), zone)

    def _label(self, kind: str, channel: str | None, edges: Sequence[CompiledEdge]) -> TransitionLabel:
        net = self.network
        return TransitionLabel(
            kind=kind,
            channel=channel,
            edges=tuple((net.instances[edge.instance].name, edge.original) for edge in edges),
        )

    def successors(self, state: SymbolicState) -> list[tuple[TransitionLabel, SymbolicState]]:
        """All discrete successors of *state* (each already delay-closed)."""
        net = self.network
        locations, variables = state.locations, state.variables
        committed = self._committed_instances(locations)
        results: list[tuple[TransitionLabel, SymbolicState]] = []

        def allowed(edges: Sequence[CompiledEdge]) -> bool:
            """Committed-location filter."""
            if not committed:
                return True
            return any(edge.instance in committed for edge in edges)

        # ---- internal edges -------------------------------------------------
        for i, instance in enumerate(net.instances):
            for edge in self._internal[i][locations[i]]:
                if not edge.data_enabled(variables):
                    continue
                if not allowed((edge,)):
                    continue
                successor = self._fire(state, (edge,))
                if successor is not None:
                    results.append((self._label("internal", None, (edge,)), successor))

        # ---- synchronisations ------------------------------------------------
        for i, instance in enumerate(net.instances):
            send_table = self._send[i][locations[i]]
            for channel_name, send_edges in send_table.items():
                channel = net.channels[channel_name]
                for send_edge in send_edges:
                    if not send_edge.data_enabled(variables):
                        continue
                    if channel.kind == "binary":
                        for j, other in enumerate(net.instances):
                            if i == j:
                                continue
                            for recv_edge in self._recv[j][locations[j]].get(channel_name, ()):
                                if not recv_edge.data_enabled(variables):
                                    continue
                                pair = (send_edge, recv_edge)
                                if not allowed(pair):
                                    continue
                                successor = self._fire(state, pair)
                                if successor is not None:
                                    results.append(
                                        (self._label("binary", channel_name, pair), successor)
                                    )
                    else:  # broadcast
                        receiver_choices: list[list[CompiledEdge]] = []
                        for j, other in enumerate(net.instances):
                            if i == j:
                                continue
                            enabled = [
                                edge
                                for edge in self._recv[j][locations[j]].get(channel_name, ())
                                if edge.data_enabled(variables)
                            ]
                            if enabled:
                                receiver_choices.append(enabled)
                        for combination in product(*receiver_choices) if receiver_choices else [()]:
                            participants = (send_edge, *combination)
                            if not allowed(participants):
                                continue
                            successor = self._fire(state, participants)
                            if successor is not None:
                                results.append(
                                    (
                                        self._label("broadcast", channel_name, participants),
                                        successor,
                                    )
                                )
        return results
