"""Symbolic (zone-graph) semantics of a compiled network of timed automata.

A symbolic state is a triple ``(location vector, variable vector, zone)``
where the zone is a canonical DBM that is *delay-closed*: it contains every
clock valuation reachable from an entry valuation by letting time pass as far
as the invariants (and urgency) allow.  This is the standard UPPAAL
exploration representation.

:class:`SuccessorGenerator` produces, for a symbolic state, all discrete
successors together with :class:`TransitionLabel` records used for traces.
Supported synchronisation semantics:

* internal (``tau``) edges,
* binary channels: one sender and one receiver from different instances,
* broadcast channels: one sender plus *all* instances with an enabled
  receiving edge (receivers may not have clock guards),
* urgent channels: time may not elapse while a synchronisation on the channel
  is enabled (this implements the paper's ``hurry!`` greedy-behaviour trick),
* urgent and committed locations.

Performance
-----------
Everything that depends only on the *discrete* part of a state is memoised
per ``(locations, variables)`` key in a :class:`_DiscreteInfo` record: the
committed set, the urgency verdict, the evaluated invariant bounds, and the
full list of :class:`_Plan` firing combinations.  A plan carries the
*evaluated* guard bounds, the updated variable vector, the concrete reset
values and the target location vector -- all pure functions of the discrete
key -- so firing a plan against a zone is nothing but copy / constrain /
reset.  Zone graphs revisit the same discrete state with many different
zones, which makes these caches the difference between re-running the
compiled guard closures per transition and a handful of integer operations.

Transition labels are likewise built once per plan and only when the caller
records traces.  The extrapolation step can be deferred by the caller
(``extrapolate=False``): the reachability engine checks passed-list coverage
on the raw delay-closed zone first and extrapolates only the states it
actually keeps (the two decisions provably coincide, see
``Explorer._store``).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from itertools import product
from typing import Iterable, Sequence

import numpy as np

from repro.core.dbm import DBM, INFINITY_RAW, LE_ZERO, DBMStack
from repro.core.network import CompiledEdge, CompiledNetwork
from repro.util.errors import ModelError

__all__ = [
    "SymbolicState",
    "TransitionLabel",
    "SuccessorGenerator",
    "SemanticsOptions",
    "BlockFire",
]


def pack_discrete(locations: tuple[int, ...], variables: tuple[int, ...]) -> bytes:
    """Pack a discrete state into the flat bytes key used by passed lists.

    The single canonical packing: :class:`SymbolicState` and the successor
    plans must agree on it, or identical discrete states would hash to
    different federations.
    """
    return array("q", locations + variables).tobytes()


@dataclass(frozen=True)
class SymbolicState:
    """A symbolic state of the zone graph."""

    locations: tuple[int, ...]
    variables: tuple[int, ...]
    zone: DBM
    #: interned bytes form of the discrete part, precomputed by the successor
    #: generator's plans (None when the state was built by hand)
    dkey: bytes | None = field(default=None, compare=False, repr=False)

    def discrete_key(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """The discrete part, used to index the passed/waiting lists."""
        return (self.locations, self.variables)

    def discrete_bytes(self) -> bytes:
        """The discrete part packed into one flat bytes key (interned form)."""
        return self.dkey or pack_discrete(self.locations, self.variables)

    def key(self) -> tuple:
        """A full hashable key including the zone."""
        return (self.locations, self.variables, self.zone.key())

    def describe(self, network: CompiledNetwork) -> str:
        """Human-readable one-line description."""
        locations = ", ".join(network.location_vector_names(self.locations))
        variables = ", ".join(
            f"{name}={value}"
            for name, value in zip(network.variable_names, self.variables)
            if value != 0
        )
        return f"<{locations}> {{{variables}}} {self.zone}"


@dataclass(frozen=True)
class TransitionLabel:
    """Description of the discrete transition taken between symbolic states.

    ``edges`` stores (instance name, edge object) pairs; the human-readable
    rendering is produced lazily by :meth:`__str__` so that label creation in
    the exploration inner loop stays cheap.
    """

    kind: str  # "internal" | "binary" | "broadcast"
    channel: str | None
    edges: tuple[tuple[str, object], ...]  # (instance name, Edge)

    def __str__(self) -> str:
        if self.kind == "internal":
            instance, edge = self.edges[0]
            return f"{instance}: {edge}"
        participants = "; ".join(f"{instance}: {edge}" for instance, edge in self.edges)
        return f"[{self.channel}] {participants}"


@dataclass
class SemanticsOptions:
    """Options controlling the symbolic semantics.

    extrapolation
        ``"max"`` (classical per-clock maximal-constant extrapolation,
        default), ``"lu"`` (per-clock lower/upper bound extrapolation
        Extra_LU over the compiled network's ``lu_bounds``; coarser wherever
        a clock is only ever bounded from one side, e.g. sporadic event
        models -- see ``docs/reductions.md``), or ``"none"`` (termination is
        then only guaranteed for models whose zone graph is finite without
        abstraction).
    check_ranges
        verify after every update that integer variables stay inside their
        declared domains (UPPAAL run-time semantics).
    """

    extrapolation: str = "max"
    check_ranges: bool = True

    def __post_init__(self):
        if self.extrapolation not in ("max", "lu", "none"):
            raise ModelError(f"unknown extrapolation mode {self.extrapolation!r}")


class _Plan:
    """One fireable edge combination of a discrete state, fully evaluated.

    Everything except the clock work is resolved at construction: the guard
    bounds are concrete raw DBM constraints, the variable updates have been
    applied, the reset values computed and the target locations determined.
    ``error`` carries a deferred evaluation error (range violation, or any
    exception a guard/update/reset expression raised): it is raised only
    when the plan's evaluated clock guards are actually satisfiable,
    mirroring the run-time semantics of the unmemoised implementation.
    """

    __slots__ = ("kind", "channel", "participants", "guards", "resets",
                 "locations", "variables", "key_bytes", "error")

    def __init__(self, kind, channel, participants, guards, resets, locations, variables, error):
        self.kind = kind
        self.channel = channel
        self.participants = participants
        #: evaluated clock guards as raw (i, j, bound) triples
        self.guards: tuple[tuple[int, int, int], ...] = guards
        #: evaluated resets as (clock, value) pairs
        self.resets: tuple[tuple[int, int], ...] = resets
        #: target location vector
        self.locations: tuple[int, ...] = locations
        #: updated variable vector
        self.variables: tuple[int, ...] = variables
        #: interned passed-list key of the target discrete state
        self.key_bytes: bytes = pack_discrete(locations, variables)
        #: deferred evaluation error (raised when the guards pass)
        self.error: Exception | None = error


class _DiscreteInfo:
    """Memoised discrete-only facts about one ``(locations, variables)`` key.

    ``plans`` and ``labels`` are filled lazily: urgency and the invariant
    bounds are needed for every state that merely gets *stored*, while plans
    are only needed when a state is actually *expanded*, and labels only when
    traces are recorded.
    """

    __slots__ = ("urgent", "committed", "invariants", "upper_pairs",
                 "upper_clocks", "upper_raws", "other_invariants", "plans", "labels",
                 "ample")

    def __init__(self, urgent: bool, committed: frozenset[int],
                 invariants: tuple[tuple[int, int, int], ...]):
        self.urgent = urgent
        self.committed = committed
        #: evaluated invariant constraints as raw (i, j, bound) triples
        self.invariants = invariants
        # split for the post-delay re-application: plain upper bounds
        # (j == 0) go through the batched DBM kernel, the rest (difference
        # or lower-bound invariants, rare) through per-constraint closure
        self.upper_pairs = [(i, raw) for i, j, raw in invariants if j == 0]
        self.upper_clocks = np.array([i for i, _ in self.upper_pairs], dtype=np.intp)
        self.upper_raws = np.array([raw for _, raw in self.upper_pairs], dtype=np.int64)
        self.other_invariants = tuple(t for t in invariants if t[1] != 0)
        self.plans: tuple[_Plan, ...] | None = None
        self.labels: list[TransitionLabel | None] | None = None
        #: memoised ample-set decision: -2 not computed yet, -1 no singleton
        #: ample plan exists, >= 0 the index of the ample plan
        self.ample: int = -2


class BlockFire:
    """One plan fired against a whole block of same-discrete-key states.

    Produced by :meth:`SuccessorGenerator.block_successors`.  ``stack`` holds
    the surviving delay-closed (not yet extrapolated) successor zones, one
    layer per entry of ``node_indices`` (positions within the input block).
    When the plan carries a deferred evaluation error, ``stack`` is ``None``
    and ``node_indices`` lists the block positions whose guards passed --
    expanding any of those states must re-raise ``error``, mirroring the
    scalar generator.
    """

    __slots__ = ("plan", "plan_index", "stack", "node_indices", "error")

    def __init__(self, plan: _Plan, plan_index: int, stack: DBMStack | None,
                 node_indices: np.ndarray, error: Exception | None):
        self.plan = plan
        self.plan_index = plan_index
        self.stack = stack
        self.node_indices = node_indices
        self.error = error


class SuccessorGenerator:
    """Computes initial and successor symbolic states of a compiled network."""

    def __init__(self, network: CompiledNetwork, options: SemanticsOptions | None = None):
        self.network = network
        self.options = options or SemanticsOptions()
        self._build_edge_tables()
        #: discrete memo: (locations, variables) -> _DiscreteInfo
        self._discrete: dict[tuple[tuple[int, ...], tuple[int, ...]], _DiscreteInfo] = {}
        #: flattened invariant constraint objects per location vector
        self._invariant_constraints: dict[tuple[int, ...], tuple] = {}
        #: cached raw extrapolation grids, keyed by the network bounds version
        self._extra_version: int = -1
        self._extra_grids = None
        #: query visibility sets for the partial-order reduction; ample-set
        #: decisions are only made once these are declared (set_visibility)
        self._visibility: tuple[frozenset[int], frozenset[int], frozenset[int]] | None = None
        #: per-edge ample-candidate verdicts, keyed by (instance, edge index)
        self._por_candidates: dict[tuple[int, int], bool] = {}
        #: static per-instance read/write footprints (built lazily)
        self._por_sets = None

    # ------------------------------------------------------------------ setup
    def _build_edge_tables(self) -> None:
        """Pre-sort outgoing edges of every location by synchronisation role."""
        net = self.network
        # internal[i][l]  -> list of edges
        # send[i][l]      -> {channel: [edges]}
        # recv[i][l]      -> {channel: [edges]}
        self._internal: list[list[list[CompiledEdge]]] = []
        self._send: list[list[dict[str, list[CompiledEdge]]]] = []
        self._recv: list[list[dict[str, list[CompiledEdge]]]] = []
        for instance in net.instances:
            internal_rows, send_rows, recv_rows = [], [], []
            for edges in instance.outgoing:
                internal, send, recv = [], {}, {}
                for edge in edges:
                    if edge.channel is None:
                        internal.append(edge)
                    elif edge.direction == "!":
                        send.setdefault(edge.channel.name, []).append(edge)
                    else:
                        recv.setdefault(edge.channel.name, []).append(edge)
                internal_rows.append(internal)
                send_rows.append(send)
                recv_rows.append(recv)
            self._internal.append(internal_rows)
            self._send.append(send_rows)
            self._recv.append(recv_rows)

    # ------------------------------------------------------------- basic helpers
    def _max_bounds(self) -> list[int]:
        return self.network.max_constants

    def _extrapolation_vectors(self):
        """Raw threshold grids for the current network bounds (cached).

        In ``"max"`` mode the classical maximal constants feed both grid
        sides.  In ``"lu"`` mode the network's per-clock lower bounds drive
        the raises and its upper bounds the relaxations (Extra_LU), which is
        strictly coarser wherever a clock is only ever compared against a
        constant from one side (``docs/reductions.md``).
        """
        version = self.network.max_constants_version
        if version != self._extra_version:
            from repro.core.dbm import _extrapolation_grids

            if self.options.extrapolation == "lu":
                lower, upper = self.network.lu_bounds
                self._extra_grids = _extrapolation_grids(tuple(lower), tuple(upper))
            else:
                bounds = tuple(self.network.max_constants)
                self._extra_grids = _extrapolation_grids(bounds, bounds)
            self._extra_version = version
        return self._extra_grids

    def extrapolate(self, zone: DBM) -> DBM:
        """Apply the configured extrapolation to *zone* in place."""
        if self.options.extrapolation != "none":
            upper_grid, lower_grid = self._extrapolation_vectors()
            zone._extrapolate_raw(upper_grid, lower_grid)
        return zone

    @staticmethod
    def _evaluate_constraints(
        constraints: Iterable, variables: Sequence[int]
    ) -> tuple[tuple[int, int, int], ...]:
        """Evaluate compiled clock constraints into raw (i, j, bound) triples."""
        return tuple(
            (
                c.i,
                c.j,
                2 * (c.sign * int(c.rhs(variables))) + (0 if c.strict else 1),
            )
            for c in constraints
        )

    def _apply_constraints(
        self, zone: DBM, constraints: Iterable, variables: Sequence[int]
    ) -> bool:
        """Conjoin compiled clock constraints; returns False when empty."""
        for i, j, raw in self._evaluate_constraints(constraints, variables):
            if not zone.constrain(i, j, raw):
                return False
        return True

    def _invariant_constraints_for(self, locations: tuple[int, ...]) -> tuple:
        """Flattened invariant constraint objects of a location vector (cached)."""
        cached = self._invariant_constraints.get(locations)
        if cached is None:
            collected: list = []
            for instance, loc in zip(self.network.instances, locations):
                collected.extend(instance.locations[loc].invariant)
            cached = tuple(collected)
            self._invariant_constraints[locations] = cached
        return cached

    def _apply_invariants(
        self, zone: DBM, locations: Sequence[int], variables: Sequence[int]
    ) -> bool:
        constraints = self._invariant_constraints_for(tuple(locations))
        return self._apply_constraints(zone, constraints, variables)

    def _is_urgent_discrete(self, locations: Sequence[int], variables: Sequence[int]) -> bool:
        """True when time may not elapse in this discrete state.

        Time is frozen when (i) some instance is in an urgent or committed
        location, or (ii) a synchronisation over an urgent channel is enabled
        (judged on data guards only -- clock guards are disallowed on urgent
        channels).
        """
        net = self.network
        for instance, loc in zip(net.instances, locations):
            location = instance.locations[loc]
            if location.urgent or location.committed:
                return True
        # urgent channel synchronisations
        for i, instance in enumerate(net.instances):
            send_table = self._send[i][locations[i]]
            for channel_name, edges in send_table.items():
                channel = net.channels[channel_name]
                if not channel.urgent:
                    continue
                if not any(edge.data_enabled(variables) for edge in edges):
                    continue
                if channel.kind == "broadcast":
                    return True  # broadcast senders never block
                # binary: need an enabled receiver in another instance
                for j, other in enumerate(net.instances):
                    if i == j:
                        continue
                    recv_edges = self._recv[j][locations[j]].get(channel_name, ())
                    if any(edge.data_enabled(variables) for edge in recv_edges):
                        return True
        return False

    def _committed_instances(self, locations: Sequence[int]) -> set[int]:
        out = set()
        for idx, (instance, loc) in enumerate(zip(self.network.instances, locations)):
            if instance.locations[loc].committed:
                out.add(idx)
        return out

    # ------------------------------------------------------------- discrete memo
    def _discrete_info(
        self, locations: tuple[int, ...], variables: tuple[int, ...]
    ) -> _DiscreteInfo:
        key = (locations, variables)
        info = self._discrete.get(key)
        if info is None:
            info = _DiscreteInfo(
                urgent=self._is_urgent_discrete(locations, variables),
                committed=frozenset(self._committed_instances(locations)),
                invariants=self._evaluate_constraints(
                    self._invariant_constraints_for(locations), variables
                ),
            )
            self._discrete[key] = info
        return info

    def _make_plan(
        self,
        kind: str,
        channel: str | None,
        participants: tuple[CompiledEdge, ...],
        source_locations: tuple[int, ...],
        variables: tuple[int, ...],
    ) -> _Plan:
        """Evaluate the discrete half of firing *participants* once.

        Evaluation errors (range violations, but also anything a guard,
        update or reset expression raises) are *deferred*: the unmemoised
        engine evaluated these lazily per fire and never reached them when
        an earlier clock guard was unsatisfiable, so the plan records the
        first error together with the guards evaluated before it, and
        :meth:`_fire` re-raises only when those guards actually pass.
        """
        net = self.network
        guards: list[tuple[int, int, int]] = []
        resets: list[tuple[int, int]] = []
        new_variables = variables
        error: Exception | None = None
        try:
            for edge in participants:
                guards.extend(self._evaluate_constraints(edge.clock_constraints, variables))
            # variable updates, sender first then receivers (list order)
            for edge in participants:
                if edge.update is not None:
                    new_variables = edge.update(new_variables)
            if self.options.check_ranges and new_variables is not variables:
                net.check_variable_ranges(new_variables)
            # clock resets (reset values are evaluated on the updated variables)
            for edge in participants:
                for clock, value_fn in edge.resets:
                    resets.append((clock, int(value_fn(new_variables))))
        except Exception as exc:
            error = exc

        new_locations = list(source_locations)
        for edge in participants:
            new_locations[edge.instance] = edge.target

        return _Plan(
            kind,
            channel,
            participants,
            tuple(guards),
            tuple(resets),
            tuple(new_locations),
            tuple(new_variables),
            error,
        )

    def _build_plans(
        self, info: _DiscreteInfo, locations: tuple[int, ...], variables: tuple[int, ...]
    ) -> None:
        """Enumerate the data-enabled, committedness-respecting firing plans.

        The enumeration order matches per-state generation so that search
        orders (and hence traces and rdfs runs) are unchanged.
        """
        net = self.network
        committed = info.committed
        plans: list[_Plan] = []

        def allowed(edges: Sequence[CompiledEdge]) -> bool:
            """Committed-location filter."""
            if not committed:
                return True
            return any(edge.instance in committed for edge in edges)

        def plan(kind: str, channel: str | None, participants: tuple[CompiledEdge, ...]) -> None:
            plans.append(self._make_plan(kind, channel, participants, locations, variables))

        # ---- internal edges -------------------------------------------------
        for i, instance in enumerate(net.instances):
            for edge in self._internal[i][locations[i]]:
                if not edge.data_enabled(variables):
                    continue
                if not allowed((edge,)):
                    continue
                plan("internal", None, (edge,))

        # ---- synchronisations ------------------------------------------------
        for i, instance in enumerate(net.instances):
            send_table = self._send[i][locations[i]]
            for channel_name, send_edges in send_table.items():
                channel = net.channels[channel_name]
                for send_edge in send_edges:
                    if not send_edge.data_enabled(variables):
                        continue
                    if channel.kind == "binary":
                        for j, other in enumerate(net.instances):
                            if i == j:
                                continue
                            for recv_edge in self._recv[j][locations[j]].get(channel_name, ()):
                                if not recv_edge.data_enabled(variables):
                                    continue
                                pair = (send_edge, recv_edge)
                                if not allowed(pair):
                                    continue
                                plan("binary", channel_name, pair)
                    else:  # broadcast
                        receiver_choices: list[list[CompiledEdge]] = []
                        for j, other in enumerate(net.instances):
                            if i == j:
                                continue
                            enabled = [
                                edge
                                for edge in self._recv[j][locations[j]].get(channel_name, ())
                                if edge.data_enabled(variables)
                            ]
                            if enabled:
                                receiver_choices.append(enabled)
                        for combination in product(*receiver_choices) if receiver_choices else [()]:
                            participants = (send_edge, *combination)
                            if not allowed(participants):
                                continue
                            plan("broadcast", channel_name, participants)

        info.plans = tuple(plans)
        info.labels = [None] * len(plans)

    def _plan_label(self, info: _DiscreteInfo, index: int) -> TransitionLabel:
        label = info.labels[index]
        if label is None:
            plan = info.plans[index]
            label = self._label(plan.kind, plan.channel, plan.participants)
            info.labels[index] = label
        return label

    # ----------------------------------------------------- partial-order reduction
    def set_visibility(
        self,
        instances: Iterable[int] = (),
        variables: Iterable[int] = (),
        clocks: Iterable[int] = (),
    ) -> None:
        """Declare the state components the reachability query observes.

        The partial-order reduction only commutes plans that are invisible
        to the query: an ample plan may not move a watched instance, write a
        watched variable or reset a watched clock.  Until the exploring
        engine declares what its query reads, :meth:`ample_plan` never
        selects a plan.  Changing the visibility invalidates all memoised
        ample decisions.
        """
        visibility = (frozenset(instances), frozenset(variables), frozenset(clocks))
        if visibility != self._visibility:
            self._visibility = visibility
            self._por_candidates.clear()
            for info in self._discrete.values():
                info.ample = -2

    def _por_other_sets(self, instance: int):
        """Aggregate variable/clock footprints of every *other* instance."""
        if self._por_sets is None:
            net = self.network
            var_index = net.variable_index
            reads: list[set[int]] = []
            writes: list[set[int]] = []
            clock_refs: list[set[int]] = []
            clock_resets: list[set[int]] = []
            for inst in net.instances:
                r: set[int] = set()
                w: set[int] = set()
                refs: set[int] = set()
                resets: set[int] = set()
                for location in inst.locations:
                    for c in location.invariant:
                        if c.i:
                            refs.add(c.i)
                        if c.j:
                            refs.add(c.j)
                        r |= {
                            var_index[name]
                            for name in c.source.rhs.variables()
                            if name in var_index
                        }
                for edges in inst.outgoing:
                    for edge in edges:
                        r |= edge.reads
                        w |= edge.writes
                        for c in edge.clock_constraints:
                            if c.i:
                                refs.add(c.i)
                            if c.j:
                                refs.add(c.j)
                        for clock, _value in edge.resets:
                            resets.add(clock)
                reads.append(r)
                writes.append(w)
                clock_refs.append(refs | resets)
                clock_resets.append(resets)
            n = len(net.instances)
            self._por_sets = tuple(
                (
                    frozenset().union(*(reads[j] for j in range(n) if j != i)),
                    frozenset().union(*(writes[j] for j in range(n) if j != i)),
                    frozenset().union(*(clock_refs[j] for j in range(n) if j != i)),
                    frozenset().union(*(clock_resets[j] for j in range(n) if j != i)),
                )
                for i in range(n)
            )
        return self._por_sets[instance]

    def _ample_candidate(self, edge: CompiledEdge) -> bool:
        """Static ample-candidacy of an internal edge (cached per edge)."""
        key = (edge.instance, edge.edge_index)
        cached = self._por_candidates.get(key)
        if cached is None:
            cached = self._compute_ample_candidate(edge)
            self._por_candidates[key] = cached
        return cached

    def _compute_ample_candidate(self, edge: CompiledEdge) -> bool:
        """Check the static singleton-ample conditions of *edge*.

        The edge qualifies when its instance can do nothing but fire it and
        the fire commutes with every action of every other instance
        (``docs/reductions.md`` gives the full soundness argument):

        * the source location is urgent or committed (time is frozen in
          every state where the instance sits there, so postponed
          interleavings never gain a delay step),
        * it is the *only* outgoing edge of its source location (the
          instance cannot move any other way while the edge is postponed),
        * it is internal, has no clock guards, and its target is not
          committed (firing it never tightens the committed-priority filter
          for the other instances),
        * it is invisible to the query (instance, written variables and
          reset clocks all unwatched, and the target invariant constrains
          no watched clock -- entering the target may clip the zone, which
          must not change a watched clock's bounds), and
        * it is statically independent of every other instance: its writes
          touch no variable the others read or write, its reads (data
          guard, updates, resets and the target invariant) touch no
          variable the others write, its resets touch no clock the others
          constrain or reset, and the target-invariant clocks are reset by
          no other instance.
        """
        vis_instances, vis_vars, vis_clocks = self._visibility
        net = self.network
        instance = net.instances[edge.instance]
        source = instance.locations[edge.source]
        target = instance.locations[edge.target]
        if not (source.urgent or source.committed):
            return False
        if len(instance.outgoing[edge.source]) != 1:
            return False
        if edge.channel is not None or edge.clock_constraints:
            return False
        if target.committed:
            return False
        if edge.instance in vis_instances:
            return False
        reset_clocks = frozenset(clock for clock, _value in edge.resets)
        if (edge.writes & vis_vars) or (reset_clocks & vis_clocks):
            return False
        var_index = net.variable_index
        read_vars = set(edge.reads)
        read_clocks: set[int] = set()
        for c in target.invariant:
            if c.i:
                read_clocks.add(c.i)
            if c.j:
                read_clocks.add(c.j)
            read_vars |= {
                var_index[name] for name in c.source.rhs.variables() if name in var_index
            }
        if read_clocks & vis_clocks:
            return False
        other_reads, other_writes, other_refs, other_resets = self._por_other_sets(edge.instance)
        if edge.writes & (other_reads | other_writes):
            return False
        if read_vars & other_writes:
            return False
        if reset_clocks & other_refs:
            return False
        if read_clocks & other_resets:
            return False
        return True

    def ample_plan(self, info: _DiscreteInfo) -> int | None:
        """Index of a singleton ample plan of this discrete state, or None.

        Requires the plan list to be built (:meth:`plan_info`).  The caller
        must close the ignoring problem itself: when the ample successor is
        already covered by the passed list (or its zone dies), the state has
        to be fully expanded instead (``Explorer`` does this).  Memoised on
        the discrete info -- the verdict is a pure function of the discrete
        state and the declared visibility.
        """
        if info.plans is None or self._visibility is None:
            return None
        ample = info.ample
        if ample == -2:
            ample = -1
            plans = info.plans
            if len(plans) > 1 and all(plan.error is None for plan in plans):
                for index, plan in enumerate(plans):
                    if plan.kind == "internal" and self._ample_candidate(plan.participants[0]):
                        ample = index
                        break
            info.ample = ample
        return None if ample < 0 else ample

    def _finalize(
        self,
        locations: tuple[int, ...],
        variables: tuple[int, ...],
        zone: DBM,
        extrapolate: bool,
        dkey: bytes | None = None,
    ) -> SymbolicState | None:
        """Apply invariants and, unless urgent, the delay closure.

        Takes ownership of *zone*: its buffer is returned to the pool when
        the state dies here.  With ``extrapolate=False`` the caller is
        expected to run :meth:`extrapolate` on the zones it keeps.
        """
        info = self._discrete_info(locations, variables)
        m, dim = zone.m, zone.dim
        for i, j, raw in info.invariants:
            # cheap no-op filter: the fired zone usually satisfies the target
            # invariants already (constrain would re-check and return True)
            if raw < m[i * dim + j] and not zone.constrain(i, j, raw):
                zone.discard()
                return None
        if not info.urgent:
            # ``up`` preserves the canonical form; the upper-bound invariants
            # it loosened are re-imposed in one batched exact re-closure,
            # difference/lower-bound invariants (rare) close incrementally
            zone.up()
            if not zone.impose_upper_bounds(info.upper_clocks, info.upper_raws, info.upper_pairs):
                zone.discard()
                return None
            for i, j, raw in info.other_invariants:
                if not zone.constrain(i, j, raw):
                    zone.discard()
                    return None
        if extrapolate:
            self.extrapolate(zone)
        return SymbolicState(locations, variables, zone, dkey)

    # --------------------------------------------------------------- initial state
    def initial_state(self) -> SymbolicState:
        """The delay-closed, extrapolated initial symbolic state."""
        net = self.network
        locations = net.initial_locations()
        variables = net.initial_variables
        zone = DBM.zero(net.dim)
        state = self._finalize(locations, variables, zone, extrapolate=True)
        if state is None:
            raise ModelError(
                "the initial state violates an invariant; the model admits no behaviour"
            )
        return state

    # ----------------------------------------------------------------- transitions
    def _fire(self, state: SymbolicState, plan: _Plan, extrapolate: bool) -> SymbolicState | None:
        """Fire a prepared plan: pure clock work against the state's zone."""
        source = state.zone
        m0, dim = source.m, source.dim
        # reject infeasible fires before paying for a zone copy: a guard bound
        # that forms a negative cycle with the stored opposite bound can never
        # be satisfied (and for a canonical zone this check is exact per guard);
        # inlined add_raw -- guard bounds are always finite
        for i, j, raw in plan.guards:
            opposite = m0[j * dim + i]
            if opposite < INFINITY_RAW and raw + opposite - ((raw | opposite) & 1) < LE_ZERO:
                return None
        zone = source.copy()
        for i, j, raw in plan.guards:
            if not zone.constrain(i, j, raw):
                zone.discard()
                return None
        if plan.error is not None:
            zone.discard()
            # reset the cached instance's traceback so repeated fires do not
            # accumulate frames from earlier raises
            raise plan.error.with_traceback(None)
        for clock, value in plan.resets:
            zone.reset(clock, value)
        return self._finalize(plan.locations, plan.variables, zone, extrapolate, plan.key_bytes)

    def _label(
        self, kind: str, channel: str | None, edges: Sequence[CompiledEdge]
    ) -> TransitionLabel:
        net = self.network
        return TransitionLabel(
            kind=kind,
            channel=channel,
            edges=tuple((net.instances[edge.instance].name, edge.original) for edge in edges),
        )

    def plan_info(self, state: SymbolicState) -> _DiscreteInfo:
        """The memoised discrete info of *state* with its plan list built."""
        info = self._discrete_info(state.locations, state.variables)
        if info.plans is None:
            self._build_plans(info, state.locations, state.variables)
        return info

    def successors(
        self,
        state: SymbolicState,
        with_labels: bool = True,
        extrapolate: bool = True,
        plan_indices: Sequence[int] | None = None,
    ) -> list[tuple[TransitionLabel | None, SymbolicState]]:
        """All discrete successors of *state* (each already delay-closed).

        With ``with_labels=False`` the label slot of every pair is ``None``;
        callers that do not record traces skip label construction entirely.
        With ``extrapolate=False`` the returned zones are *not* extrapolated
        yet -- the reachability engine uses this to extrapolate only the
        states that survive its inclusion check.  ``plan_indices`` restricts
        firing to the given plan positions: the reachability engine expands
        only an ample plan this way, and re-expands the remaining plans when
        the ignoring proviso triggers.
        """
        info = self.plan_info(state)
        results: list[tuple[TransitionLabel | None, SymbolicState]] = []
        indices = range(len(info.plans)) if plan_indices is None else plan_indices
        for index in indices:
            successor = self._fire(state, info.plans[index], extrapolate)
            if successor is None:
                continue
            label = self._plan_label(info, index) if with_labels else None
            results.append((label, successor))
        return results

    # ------------------------------------------------------------- block firing
    def extrapolate_stack(self, stack: DBMStack) -> DBMStack:
        """Batched :meth:`extrapolate` over a whole zone stack, in place."""
        if self.options.extrapolation != "none":
            upper_grid, lower_grid = self._extrapolation_vectors()
            stack.extrapolate(upper_grid, lower_grid)
        return stack

    def block_successors(
        self,
        states: Sequence[SymbolicState],
        plan_indices: Sequence[int] | None = None,
        rows: Sequence[int] | None = None,
    ) -> tuple[_DiscreteInfo, list[BlockFire]]:
        """Fire every plan against a block of states sharing one discrete key.

        All *states* must have identical ``(locations, variables)`` -- the
        caller pops them as one run from the waiting list -- so they share
        the memoised plan list, and each plan's clock work (guards, resets,
        target invariants, delay closure) runs as stacked whole-block numpy
        kernels instead of one zone at a time.  Per fired plan the result
        lists the surviving block positions and their delay-closed zones;
        extrapolation is deferred exactly like ``successors(...,
        extrapolate=False)`` (the engine extrapolates only the states it
        keeps, via :meth:`extrapolate_stack`).

        ``plan_indices`` restricts firing to the given plan positions and
        ``rows`` to the given block positions; the returned ``node_indices``
        always refer to positions in the full *states* block.  The
        reachability engine uses both for the partial-order reduction: fire
        only the ample plan for the whole block first, then re-expand the
        remaining plans for exactly the rows whose ample successor was
        already covered.

        The per-layer results are bit-identical to firing the scalar
        pipeline on each state: every batched kernel matches its scalar
        counterpart element-wise, and layers whose zone dies anywhere along
        the pipeline are dropped just like the scalar ``None`` returns.
        """
        first = states[0]
        info = self._discrete_info(first.locations, first.variables)
        if info.plans is None:
            self._build_plans(info, first.locations, first.variables)
        fires: list[BlockFire] = []
        if not info.plans:
            return info, fires
        if rows is None:
            selected: Sequence[SymbolicState] = states
            all_indices = np.arange(len(states), dtype=np.intp)
        else:
            all_indices = np.asarray(rows, dtype=np.intp)
            selected = [states[r] for r in all_indices]
        if not len(selected):
            return info, fires
        source = DBMStack.from_zones([s.zone for s in selected])
        chosen = range(len(info.plans)) if plan_indices is None else plan_indices
        for index in chosen:
            plan = info.plans[index]
            # reject infeasible fires before paying for the stack copy (the
            # batched form of the scalar negative-cycle precheck)
            indices = all_indices
            feasible: np.ndarray | None = None
            for i, j, raw in plan.guards:
                mask = source.guard_feasible(i, j, raw)
                feasible = mask if feasible is None else (feasible & mask)
            if feasible is not None and not feasible.all():
                local = np.flatnonzero(feasible)
                if not len(local):
                    continue
                indices = all_indices[local]
                work = source.compress(local)
            else:
                work = source.copy()
            for i, j, raw in plan.guards:
                work.constrain(i, j, raw)
            alive = ~work.empties()
            if plan.error is not None:
                # deferred evaluation error: fires whose guards pass must
                # re-raise when their state is expanded (scalar semantics)
                passing = np.flatnonzero(alive)
                work.discard()
                if len(passing):
                    fires.append(BlockFire(plan, index, None, indices[passing], plan.error))
                continue
            if not alive.all():
                survivors = np.flatnonzero(alive)
                if not len(survivors):
                    work.discard()
                    continue
                compacted = work.compress(survivors)
                work.discard()
                work = compacted
                indices = indices[survivors]
            for clock, value in plan.resets:
                work.reset(clock, value)
            # target invariants + delay closure (the batched _finalize)
            target = self._discrete_info(plan.locations, plan.variables)
            for i, j, raw in target.invariants:
                # cheap no-op filter, matching the scalar pipeline
                if (raw < work.a[:, i, j]).any():
                    work.constrain(i, j, raw)
            if not target.urgent:
                work.up()
                work.impose_upper_bounds(target.upper_clocks, target.upper_raws)
                for i, j, raw in target.other_invariants:
                    work.constrain(i, j, raw)
            alive = ~work.empties()
            if not alive.all():
                survivors = np.flatnonzero(alive)
                if not len(survivors):
                    work.discard()
                    continue
                compacted = work.compress(survivors)
                work.discard()
                work = compacted
                indices = indices[survivors]
            fires.append(BlockFire(plan, index, work, indices, None))
        source.discard()
        return info, fires
