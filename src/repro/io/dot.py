"""Graphviz DOT rendering of timed automata and networks.

The paper presents its modelling patterns as automaton figures (Figs. 4–9);
this module regenerates equivalent pictures from the generated models so that
they can be inspected (``dot -Tpdf``) and diffed against the paper.
"""

from __future__ import annotations

from repro.core.automaton import TimedAutomaton
from repro.core.network import Network

__all__ = ["automaton_to_dot", "network_to_dot"]


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _edge_label(edge) -> str:
    parts = []
    if not edge.guard.is_trivially_true:
        parts.append(str(edge.guard))
    if edge.sync is not None:
        parts.append(str(edge.sync))
    actions = [str(update) for update in edge.updates]
    actions += [f"{clock} := {value}" for clock, value in edge.resets]
    if actions:
        parts.append(", ".join(actions))
    return "\\n".join(_escape(part) for part in parts)


def automaton_to_dot(automaton: TimedAutomaton, graph_name: str | None = None) -> str:
    """Render one automaton as a DOT digraph string."""
    name = graph_name or automaton.name
    lines = [
        f'digraph "{_escape(name)}" {{',
        "  rankdir=LR;",
        '  node [shape=ellipse, fontsize=10];',
        '  edge [fontsize=9];',
    ]
    for location in automaton.locations.values():
        attributes = []
        label = location.name
        if not location.invariant.is_trivially_true:
            label += f"\\n{_escape(str(location.invariant))}"
        attributes.append(f'label="{label}"')
        if location.urgent:
            attributes.append('style=dashed')
        if location.committed:
            attributes.append('style=bold')
        if location.name == automaton.initial_location:
            attributes.append('peripheries=2')
        lines.append(f'  "{_escape(location.name)}" [{", ".join(attributes)}];')
    for edge in automaton.edges:
        label = _edge_label(edge)
        lines.append(
            f'  "{_escape(edge.source)}" -> "{_escape(edge.target)}" [label="{label}"];'
        )
    lines.append("}")
    return "\n".join(lines)


def network_to_dot(network: Network) -> str:
    """Render a whole network as one DOT digraph with one cluster per instance."""
    lines = [f'digraph "{_escape(network.name)}" {{', "  rankdir=LR;",
             '  node [shape=ellipse, fontsize=10];', '  edge [fontsize=9];']
    for index, (instance_name, automaton) in enumerate(network.instances):
        lines.append(f'  subgraph "cluster_{index}" {{')
        lines.append(f'    label="{_escape(instance_name)}";')
        for location in automaton.locations.values():
            node_id = f"{instance_name}.{location.name}"
            label = location.name
            if not location.invariant.is_trivially_true:
                label += f"\\n{_escape(str(location.invariant))}"
            peripheries = ", peripheries=2" if location.name == automaton.initial_location else ""
            lines.append(f'    "{_escape(node_id)}" [label="{label}"{peripheries}];')
        for edge in automaton.edges:
            source = f"{instance_name}.{edge.source}"
            target = f"{instance_name}.{edge.target}"
            lines.append(
                f'    "{_escape(source)}" -> "{_escape(target)}" [label="{_edge_label(edge)}"];'
            )
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)
