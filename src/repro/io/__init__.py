"""Interchange and reporting: DOT rendering, UPPAAL XML export, result tables."""

from repro.io.dot import automaton_to_dot, network_to_dot
from repro.io.report import format_table, format_table1, format_table2
from repro.io.uppaal_xml import network_to_xml, query_file

__all__ = [
    "automaton_to_dot",
    "network_to_dot",
    "network_to_xml",
    "query_file",
    "format_table",
    "format_table1",
    "format_table2",
]
