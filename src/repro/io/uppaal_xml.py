"""Export of networks to the UPPAAL 4.x XML format.

The export makes the generated models usable with the real UPPAAL tool (when
one is available) and doubles as a human-readable serialisation.  The
inverse direction (importing UPPAAL XML) is intentionally out of scope: the
library's own builder API plays that role.

The exported dialect uses:

* one ``<template>`` per automaton instance (already flattened: local
  constants inlined by the library would lose their names, so constants and
  variables are re-declared in the template's local declarations),
* ``<system>`` instantiating every template once,
* queries written separately by :func:`queries_to_xml` / :func:`query_file`.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from repro.core.automaton import TimedAutomaton
from repro.core.declarations import BROADCAST
from repro.core.network import Network

__all__ = ["network_to_xml", "query_file"]


def _template_declarations(automaton: TimedAutomaton) -> str:
    lines = []
    if automaton.clocks:
        lines.append("clock " + ", ".join(automaton.clocks) + ";")
    for constant in automaton.constants.values():
        lines.append(f"const int {constant.name} = {constant.value};")
    for variable in automaton.variables.values():
        lines.append(
            f"int[{variable.domain.lo},{variable.domain.hi}] {variable.name} = {variable.initial};"
        )
    return "\n".join(lines)


def _location_id(instance: str, location: str) -> str:
    return f"id_{instance}_{location}"


def _template_xml(instance_name: str, automaton: TimedAutomaton) -> list[str]:
    lines = [f"  <template>", f"    <name>{escape(instance_name)}</name>"]
    declarations = _template_declarations(automaton)
    if declarations:
        lines.append(f"    <declaration>{escape(declarations)}</declaration>")
    for location in automaton.locations.values():
        loc_id = _location_id(instance_name, location.name)
        lines.append(f'    <location id="{loc_id}">')
        lines.append(f"      <name>{escape(location.name)}</name>")
        if not location.invariant.is_trivially_true:
            lines.append(
                f'      <label kind="invariant">{escape(str(location.invariant))}</label>'
            )
        if location.urgent:
            lines.append("      <urgent/>")
        if location.committed:
            lines.append("      <committed/>")
        lines.append("    </location>")
    initial = automaton.initial_location or next(iter(automaton.locations))
    lines.append(f'    <init ref="{_location_id(instance_name, initial)}"/>')
    for edge in automaton.edges:
        lines.append("    <transition>")
        lines.append(f'      <source ref="{_location_id(instance_name, edge.source)}"/>')
        lines.append(f'      <target ref="{_location_id(instance_name, edge.target)}"/>')
        if not edge.guard.is_trivially_true:
            lines.append(f'      <label kind="guard">{escape(str(edge.guard))}</label>')
        if edge.sync is not None:
            lines.append(f'      <label kind="synchronisation">{escape(str(edge.sync))}</label>')
        assignments = [str(update) for update in edge.updates]
        assignments += [f"{clock} = {value}" for clock, value in edge.resets]
        if assignments:
            lines.append(
                f'      <label kind="assignment">{escape(", ".join(assignments))}</label>'
            )
        lines.append("    </transition>")
    lines.append("  </template>")
    return lines


def network_to_xml(network: Network) -> str:
    """Serialise a network to an UPPAAL 4.x ``.xml`` document string."""
    lines = [
        '<?xml version="1.0" encoding="utf-8"?>',
        "<!DOCTYPE nta PUBLIC '-//Uppaal Team//DTD Flat System 1.1//EN' "
        "'http://www.it.uu.se/research/group/darts/uppaal/flat-1_2.dtd'>",
        "<nta>",
    ]
    declarations = []
    for channel in network.channels.values():
        qualifiers = ""
        if channel.urgent:
            qualifiers += "urgent "
        if channel.kind == BROADCAST:
            qualifiers += "broadcast "
        declarations.append(f"{qualifiers}chan {channel.name};")
    for constant in network.constants.values():
        declarations.append(f"const int {constant.name} = {constant.value};")
    for variable in network.variables.values():
        declarations.append(
            f"int[{variable.domain.lo},{variable.domain.hi}] {variable.name} = {variable.initial};"
        )
    for clock in network.clocks.values():
        declarations.append(f"clock {clock.name};")
    lines.append(f"  <declaration>{escape(chr(10).join(declarations))}</declaration>")

    system_lines = []
    for instance_name, automaton in network.instances:
        lines.extend(_template_xml(instance_name, automaton))
        system_lines.append(instance_name)
    lines.append(
        "  <system>" + escape("system " + ", ".join(system_lines) + ";") + "</system>"
    )
    lines.append("</nta>")
    return "\n".join(lines)


def query_file(queries: list[str], comments: list[str] | None = None) -> str:
    """Render a UPPAAL ``.q`` query file.

    ``queries`` are requirement strings such as
    ``"A[] (obs.seen imply obs.y < 200000)"``; ``comments`` (same length, or
    ``None``) are attached as ``//`` lines above each query.
    """
    lines: list[str] = []
    for index, query in enumerate(queries):
        if comments and index < len(comments) and comments[index]:
            lines.append(f"// {comments[index]}")
        lines.append(query)
        lines.append("")
    return "\n".join(lines)
