"""Plain-text result tables in the layout of the paper's Tables 1 and 2.

These helpers are shared by the benchmark harnesses and the examples: they
take the per-cell results produced by the analyses and print rows/columns in
the same arrangement as the paper, so that a visual diff against the
published tables is straightforward.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_table1", "format_table2"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: str | None = None,
) -> str:
    """Format a simple fixed-width text table."""
    columns = len(headers)
    widths = [len(str(header)) for header in headers]
    for row in rows:
        for index in range(columns):
            cell = str(row[index]) if index < len(row) else ""
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(header).ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            "  ".join(
                (str(row[index]) if index < len(row) else "").ljust(widths[index])
                for index in range(columns)
            )
        )
    return "\n".join(lines)


def _format_cell(value, lower_bound: bool = False) -> str:
    if value is None:
        return "-"
    prefix = "> " if lower_bound else ""
    return f"{prefix}{value:.3f}"


def format_table1(
    results: Mapping[str, Mapping[str, tuple[float | None, bool]]],
    configurations: Sequence[str],
    paper: Mapping[tuple[str, str], float] | None = None,
) -> str:
    """Format Table 1: rows = requirements, columns = event configurations.

    ``results[row][config]`` is a ``(milliseconds, is_lower_bound)`` pair.
    When ``paper`` is given, the published value is shown in brackets next to
    the reproduced one.
    """
    headers = ["Requirement / Event model", *configurations]
    rows = []
    for row_label, cells in results.items():
        row = [row_label]
        for config in configurations:
            value, lower = cells.get(config, (None, False))
            cell = _format_cell(value, lower)
            if paper and (row_label, config) in paper:
                cell += f" [{paper[(row_label, config)]:.3f}]"
            row.append(cell)
        rows.append(row)
    return format_table(
        headers, rows, title="Table 1 — worst-case response times (ms), [paper value]"
    )


def format_table2(
    results: Mapping[str, Mapping[str, float | None]],
    tools: Sequence[str],
    paper: Mapping[str, Mapping[str, float]] | None = None,
) -> str:
    """Format Table 2: rows = requirements, columns = analysis techniques."""
    headers = ["Requirement / Tool", *tools]
    rows = []
    for row_label, cells in results.items():
        row = [row_label]
        for tool in tools:
            value = cells.get(tool)
            cell = "-" if value is None else f"{value:.3f}"
            if paper and row_label in paper and tool in paper[row_label]:
                cell += f" [{paper[row_label][tool]:.3f}]"
            row.append(cell)
        rows.append(row)
    return format_table(
        headers, rows, title="Table 2 — comparison of techniques (ms), [paper value]"
    )
