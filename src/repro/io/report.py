"""Plain-text result tables in the layout of the paper's Tables 1 and 2.

These helpers are shared by the benchmark harnesses and the examples: they
take the per-cell results produced by the analyses and print rows/columns in
the same arrangement as the paper, so that a visual diff against the
published tables is straightforward.

:func:`format_gantt` renders a concrete witness schedule
(:class:`repro.witness.ConcreteRun`) as an ASCII Gantt timeline — one row
per resource, one column per time quantum, service segments labelled by
scenario — used by ``repro-diffcheck --replay`` and the examples to make a
counterexample's worst-case schedule humanly readable.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_table1", "format_table2", "format_gantt"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: str | None = None,
) -> str:
    """Format a simple fixed-width text table."""
    columns = len(headers)
    widths = [len(str(header)) for header in headers]
    for row in rows:
        for index in range(columns):
            cell = str(row[index]) if index < len(row) else ""
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(header).ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            "  ".join(
                (str(row[index]) if index < len(row) else "").ljust(widths[index])
                for index in range(columns)
            )
        )
    return "\n".join(lines)


def _format_cell(value, lower_bound: bool = False) -> str:
    if value is None:
        return "-"
    prefix = "> " if lower_bound else ""
    return f"{prefix}{value:.3f}"


def format_table1(
    results: Mapping[str, Mapping[str, tuple[float | None, bool]]],
    configurations: Sequence[str],
    paper: Mapping[tuple[str, str], float] | None = None,
) -> str:
    """Format Table 1: rows = requirements, columns = event configurations.

    ``results[row][config]`` is a ``(milliseconds, is_lower_bound)`` pair.
    When ``paper`` is given, the published value is shown in brackets next to
    the reproduced one.
    """
    headers = ["Requirement / Event model", *configurations]
    rows = []
    for row_label, cells in results.items():
        row = [row_label]
        for config in configurations:
            value, lower = cells.get(config, (None, False))
            cell = _format_cell(value, lower)
            if paper and (row_label, config) in paper:
                cell += f" [{paper[(row_label, config)]:.3f}]"
            row.append(cell)
        rows.append(row)
    return format_table(
        headers, rows, title="Table 1 — worst-case response times (ms), [paper value]"
    )


def format_gantt(run, width: int = 64) -> str:
    """Render a concrete witness run as an ASCII Gantt timeline.

    *run* is duck-typed (``model_name``, ``requirement``, ``strategy``,
    ``response_ticks``, ``total_ticks``, ``events``, ``arrivals``) so this
    module stays import-free of the witness subsystem.  Each resource gets
    one row; a column covers ``ceil(total / width)`` ticks; service segments
    are labelled with the scenario's letter (upper case while executing,
    ``*`` marks a column containing a preemption).
    """
    events = list(run.events)
    total = max(run.total_ticks, 1)
    scale = max(1, -(-total // width))  # ticks per column
    columns = -(-total // scale) + 1
    letters: dict[str, str] = {}
    for name in sorted(run.arrivals):
        letters[name] = chr(ord("A") + (len(letters) % 26))

    # reconstruct per-resource service segments from the event stream
    segments: dict[str, list[tuple[int, int, str]]] = {}
    preempt_marks: dict[str, list[int]] = {}
    open_jobs: dict[str, tuple[int, str]] = {}
    for event in events:
        resource = event.resource
        if resource is None:
            continue
        if event.kind in ("start", "resume"):
            open_jobs[resource] = (event.time, event.scenario)
        elif event.kind in ("preempt", "complete"):
            opened = open_jobs.pop(resource, None)
            if opened is not None:
                segments.setdefault(resource, []).append(
                    (opened[0], event.time, opened[1])
                )
            if event.kind == "preempt":
                preempt_marks.setdefault(resource, []).append(event.time)
    for resource, (start, scenario) in open_jobs.items():
        segments.setdefault(resource, []).append((start, total, scenario))

    lines = [
        f"witness Gantt — {run.model_name}.{run.requirement} "
        f"({run.strategy}): response {run.response_ticks} ticks, "
        f"{scale} tick(s)/column",
    ]
    for scenario in sorted(run.arrivals):
        times = ", ".join(str(t) for t in run.arrivals[scenario])
        lines.append(f"  releases {letters[scenario]} = {scenario}: {times or '-'}")
    name_width = max((len(name) for name in segments), default=8)
    for resource in sorted(segments):
        row = ["."] * columns
        for start, end, scenario in segments[resource]:
            letter = letters.get(scenario, "?")
            first = start // scale
            last = max(first, (max(end, start + 1) - 1) // scale)
            for column in range(first, min(last + 1, columns)):
                row[column] = letter
        for mark in preempt_marks.get(resource, ()):
            row[min(mark // scale, columns - 1)] = "*"
        lines.append(f"  {resource.ljust(name_width)} |{''.join(row)}|")
    axis = f"  {' ' * name_width} 0{'.' * max(0, columns - len(str(total)) - 1)}{total}"
    lines.append(axis)
    return "\n".join(lines)


def format_table2(
    results: Mapping[str, Mapping[str, float | None]],
    tools: Sequence[str],
    paper: Mapping[str, Mapping[str, float]] | None = None,
) -> str:
    """Format Table 2: rows = requirements, columns = analysis techniques."""
    headers = ["Requirement / Tool", *tools]
    rows = []
    for row_label, cells in results.items():
        row = [row_label]
        for tool in tools:
            value = cells.get(tool)
            cell = "-" if value is None else f"{value:.3f}"
            if paper and row_label in paper and tool in paper[row_label]:
                cell += f" [{paper[row_label][tool]:.3f}]"
            row.append(cell)
        rows.append(row)
    return format_table(
        headers, rows, title="Table 2 — comparison of techniques (ms), [paper value]"
    )
