"""Witness validation: TA step-checking and trace-driven DES replay.

Two independent machine checks establish that a concrete witness schedule is
real:

* the **TA step-checker** (:func:`check_steps`) re-executes the schedule
  against the *concrete* semantics of the generated network of timed
  automata: starting from the initial state with all clocks at zero it
  advances time by each recorded delay, verifies that every invariant
  survives the delay, that urgent states do not delay, that the named
  transition is enabled (data guards via the memoised plans, clock guards on
  the concrete valuation) and applies its updates and resets — a witness
  passes only if it is a genuine run of the network;
* the **DES replay** (:class:`ReplaySimulator`) feeds the witness's concrete
  arrival times into the existing discrete-event servers in a deterministic
  trace-driven mode: the recorded dispatch order guides the servers through
  the nondeterministic scheduling choices (and through the TA's
  preempt-at-completion-instant races), and the replayed response time of
  the tagged scenario instance must equal the witness's response exactly.

:func:`validate_witness` runs both and aggregates the findings.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

from repro.arch.generator import GeneratedModel, build_model
from repro.arch.model import ArchitectureModel
from repro.baselines.des.servers import ResourceServer, RoundRobinServer, TdmaServer
from repro.baselines.des.simulator import _SimulationRun
from repro.core.network import CompiledNetwork
from repro.core.successors import SuccessorGenerator
from repro.util.errors import AnalysisError
from repro.witness.concretise import ConcretisedStep
from repro.witness.schedule import ConcreteRun

__all__ = [
    "StepCheckReport",
    "ReplayReport",
    "WitnessValidation",
    "check_steps",
    "ReplaySimulator",
    "validate_witness",
]


# ---------------------------------------------------------------------------
# TA step-checking
# ---------------------------------------------------------------------------

@dataclass
class StepCheckReport:
    """Outcome of re-validating a witness against the network semantics."""

    problems: list[str] = field(default_factory=list)
    #: final concrete clock valuation (network clock ids)
    final_clocks: tuple[int, ...] = ()
    final_locations: tuple[int, ...] = ()
    final_variables: tuple[int, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.problems


def _holds(values: Sequence[int], i: int, j: int, raw: int) -> bool:
    """Concrete satisfaction of the raw DBM constraint ``x_i - x_j (raw)``."""
    diff = values[i] - values[j]
    value, strict = raw >> 1, (raw & 1) == 0
    return diff < value or (not strict and diff == value)


def check_steps(network: CompiledNetwork, run: ConcreteRun) -> StepCheckReport:
    """Re-execute *run* step by step under the concrete TA semantics."""
    report = StepCheckReport()
    generator = SuccessorGenerator(network)
    instance_names = [instance.name for instance in network.instances]
    locations = network.initial_locations()
    variables = network.initial_variables
    clocks = [0] * network.dim
    now = 0

    info = generator._discrete_info(locations, variables)
    for i, j, raw in info.invariants:
        if not _holds(clocks, i, j, raw):
            report.problems.append("initial state violates an invariant")

    for step in run.steps:
        prefix = f"step {step.index} (t={step.time})"
        delay = step.time - now
        if delay < 0:
            report.problems.append(f"{prefix}: time runs backwards")
            break
        if delay != step.delay:
            report.problems.append(f"{prefix}: recorded delay {step.delay} != {delay}")
        if delay > 0 and info.urgent:
            report.problems.append(f"{prefix}: delay of {delay} in an urgent state")
        for c in range(1, network.dim):
            clocks[c] += delay
        # every invariant of the pre-transition state must survive the delay
        for i, j, raw in info.invariants:
            if not _holds(clocks, i, j, raw):
                report.problems.append(f"{prefix}: invariant violated after the delay")
                break

        if info.plans is None:
            generator._build_plans(info, locations, variables)
        wanted_edges = tuple(tuple(edge) for edge in step.edges)
        wanted_resets = tuple(tuple(pair) for pair in step.resets)
        candidates = []
        for plan in info.plans:
            if plan.kind != step.kind or plan.channel != step.channel:
                continue
            plan_edges = tuple(
                (
                    instance_names[edge.instance],
                    network.instances[edge.instance].locations[edge.source].name,
                    network.instances[edge.instance].locations[edge.target].name,
                )
                for edge in plan.participants
            )
            if plan_edges == wanted_edges and plan.error is None:
                candidates.append(plan)
        # several data-enabled plans may share their edge endpoints (e.g. the
        # observer's tag / no-tag edges); the recorded resets disambiguate
        exact = [p for p in candidates if tuple(p.resets) == wanted_resets]
        fired = None
        for plan in exact or candidates:
            if all(_holds(clocks, i, j, raw) for i, j, raw in plan.guards):
                fired = plan
                break
        if fired is None:
            reason = (
                "its clock guards are not satisfied" if candidates
                else "no such transition exists in this state"
            )
            report.problems.append(f"{prefix}: transition is not enabled ({reason})")
            break

        for clock, value in fired.resets:
            clocks[clock] = value
        if tuple(fired.resets) != tuple(step.resets):
            report.problems.append(f"{prefix}: recorded resets differ from the model's")
        locations, variables = fired.locations, fired.variables
        now = step.time
        info = generator._discrete_info(locations, variables)
        for i, j, raw in info.invariants:
            if not _holds(clocks, i, j, raw):
                report.problems.append(f"{prefix}: target invariant violated on entry")
                break

    report.final_clocks = tuple(clocks)
    report.final_locations = tuple(locations)
    report.final_variables = tuple(variables)
    return report


# ---------------------------------------------------------------------------
# Trace-driven DES replay
# ---------------------------------------------------------------------------

class _GuidedServer(ResourceServer):
    """A resource server that follows a witness's recorded dispatch order.

    ``script`` is the sequence of step names (task keys) in the order the
    witness dispatched them on this resource (starts and resumes alike);
    ``preempts`` lists the ``(time, task key)`` instants at which the
    witness preempts the running job.  The script only *selects among ready
    jobs* — it can never start work that has not been released.  While the
    script's next job is not ready yet the server simply waits (the witness
    had the resource idle, or the job is submitted later within the same
    instant); a witness that never delivers the scripted job leaves the
    script non-empty, which the replay reports as a divergence.
    """

    def __init__(self, simulator, name, preemptive, priority_based,
                 script: Sequence[str], preempts: Sequence[tuple[int, str]],
                 problems: list[str]):
        super().__init__(simulator, name, preemptive=preemptive,
                         priority_based=priority_based)
        self._script = deque(script)
        self._preempts = list(preempts)
        self._problems = problems

    def leftover_script(self) -> int:
        return len(self._script)

    def _pick_next(self):
        if self._script:
            key = self._script[0]
            matching = [job for job in self._ready if job.task_key == key]
            if matching:
                return min(matching, key=lambda job: job.sequence)
            return None  # the scripted job is not ready yet: wait for it
        return super()._pick_next()

    def _start_next(self):
        super()._start_next()
        if (
            self._running is not None
            and self._script
            and self._running.task_key == self._script[0]
        ):
            self._script.popleft()

    def _preempt_running(self, allow_finished: bool = False) -> None:
        job = self._running
        assert job is not None
        elapsed = self.simulator.now - self._running_since
        job.remaining -= elapsed
        self.busy_ticks += elapsed
        if job.remaining < 0 or (job.remaining == 0 and not allow_finished):
            raise AnalysisError(
                f"internal error: preempting a finished job on {self.name}"
            )
        if self._completion is not None:
            self._completion.cancel()
        self._ready.append(job)
        self._running = None
        self._completion = None

    def _reschedule(self) -> None:
        if self._running is None:
            self._start_next()
            return
        if not self.preemptive or not self.priority_based:
            return
        candidate = self._pick_next()
        if candidate is None or candidate.priority >= self._running.priority:
            return
        now = self.simulator.now
        scripted = (now, self._running.task_key)
        if self._running.remaining <= now - self._running_since:
            # the running job completes at this very instant; the TA
            # semantics still allows the released higher-priority job to win
            # the race and preempt it (its remaining work is then zero and it
            # completes immediately when resumed) -- follow the witness
            if scripted in self._preempts:
                self._preempts.remove(scripted)
                self._preempt_running(allow_finished=True)
                self._start_next()
            return
        self._preempt_running()
        self._start_next()


class _GuidedRoundRobinServer(RoundRobinServer):
    """A round-robin server that follows the witness's dispatch order.

    The budgeted round-robin automaton interleaves its urgent zero-time
    turn skips with same-instant arrivals, so the visit that wins a given
    instant depends on the injection order the symbolic engine chose.  The
    guided server waits for the scripted job (like :class:`_GuidedServer`)
    and advances the turn pointer to its visit exactly as the automaton's
    zero-time skips would, keeping the budget bookkeeping consistent for
    the post-witness tail.
    """

    def __init__(self, simulator, name, order, budgets,
                 script: Sequence[str], problems: list[str]):
        super().__init__(simulator, name, order, budgets)
        self._script = deque(script)
        self._problems = problems

    def leftover_script(self) -> int:
        return len(self._script)

    def _pick_next(self):
        if self._script:
            key = self._script[0]
            matching = [job for job in self._ready if job.task_key == key]
            if not matching:
                return None  # the scripted job is not ready yet: wait for it
            for _ in range(len(self._order) + 1):
                current = self._order[self._turn]
                if current == key and self._served < self._budgets[key]:
                    self._served += 1
                    return min(matching, key=lambda job: job.sequence)
                self._advance()
            self._problems.append(
                f"{self.name}: witness dispatch of {key!r} is not reachable "
                "by cyclic visits"
            )
            self._script.clear()
        return super()._pick_next()

    def _start_next(self):
        super()._start_next()
        if (
            self._running is not None
            and self._script
            and self._running.task_key == self._script[0]
        ):
            self._script.popleft()


class _GuidedTdmaServer(TdmaServer):
    """A TDMA server that follows the witness's recorded start instants.

    The TDMA automaton races a job arriving exactly at the begin instant of
    its own slot against the slot switch: the job may be served there or
    wait a full cycle.  The plain :class:`TdmaServer` resolves the race
    optimistically; the guided variant dispatches each job at the slot begin
    the witness recorded (falling back to the default rule once the script
    is exhausted), rejecting start times that are not legal begins of the
    job's own slot.
    """

    def __init__(self, simulator, name, slot_ticks, order,
                 starts: dict[str, deque[int]], problems: list[str]):
        super().__init__(simulator, name, slot_ticks, order)
        self._guided_starts = starts
        self._problems = problems

    def leftover_script(self) -> int:
        return sum(len(queue) for queue in self._guided_starts.values())

    def submit(self, job) -> None:
        queue = self._guided_starts.get(job.task_key)
        if not queue:
            super().submit(job)
            return
        start = queue.popleft()
        now = self.simulator.now
        index = self._slot_index.get(job.task_key)
        offset = (index or 0) * self.slot_ticks
        legal = (
            index is not None
            and start >= now
            and (start - offset) % self.cycle == 0
            and (start - offset) // self.cycle >= self._next_cycle[job.task_key]
            and job.demand <= self.slot_ticks
        )
        if not legal:
            self._problems.append(
                f"{self.name}: witness starts {job.name!r} at t={start}, which is "
                "not a free begin instant of its own slot"
            )
            super().submit(job)
            return
        job.submitted_at = now
        self._next_cycle[job.task_key] = (start - offset) // self.cycle + 1
        self._in_flight.append((start, start + job.demand))
        self.simulator.schedule_at(start + job.demand, lambda: self._complete(job, start))


@dataclass
class ReplayReport:
    """Outcome of the trace-driven DES replay."""

    problems: list[str] = field(default_factory=list)
    #: response-time samples of the measured requirement, FIFO instance order
    samples: tuple[int, ...] = ()
    #: the replayed response of the tagged instance (None when it never completed)
    replayed_response: int | None = None

    @property
    def ok(self) -> bool:
        return not self.problems


class ReplaySimulator:
    """Deterministic trace-driven DES replay of a concrete witness run."""

    def __init__(self, model: ArchitectureModel, run: ConcreteRun):
        self.model = model
        self.run = run
        self.problems: list[str] = []

    def _horizon(self) -> int:
        """A horizon past which every released job has surely completed."""
        total_work = 0
        jobs = 0
        for scenario, times in self.run.arrivals.items():
            jobs += len(times)
            total_work += len(times) * self.model.chain_duration(scenario)
        cycle = 1
        for resource in (*self.model.processors.values(), *self.model.buses.values()):
            if not self.model.steps_on_resource(resource.name):
                continue
            if resource.policy.time_triggered:
                cycle = max(cycle, self.model.tdma_cycle(resource.name))
            elif resource.policy.budgeted:
                cycle = max(cycle, self.model.rr_round_length(resource.name))
        steps_total = sum(len(s.steps) for s in self.model.scenarios.values())
        return self.run.total_ticks + total_work + (jobs * steps_total + 2) * cycle + 1

    def replay(self) -> ReplayReport:
        report = ReplayReport()
        scripts: dict[str, list[str]] = {}
        preempts: dict[str, list[tuple[int, str]]] = {}
        for event in self.run.events:
            if event.resource is None:
                continue
            if event.kind in ("start", "resume"):
                scripts.setdefault(event.resource, []).append(event.step)
            elif event.kind == "preempt":
                preempts.setdefault(event.resource, []).append((event.time, event.step))

        start_times: dict[str, dict[str, deque[int]]] = {}
        for event in self.run.events:
            if event.kind == "start" and event.resource is not None:
                start_times.setdefault(event.resource, {}).setdefault(
                    event.step, deque()
                ).append(event.time)

        guided: list = []

        def factory(simulator, model, resource, preemptable):
            policy = resource.policy
            if model.steps_on_resource(resource.name):
                if policy.time_triggered:
                    order = [
                        step.name
                        for _scenario, step in model.cyclic_order(resource.name)
                    ]
                    server = _GuidedTdmaServer(
                        simulator, resource.name, resource.slot_ticks or 0, order,
                        starts=start_times.get(resource.name, {}),
                        problems=report.problems,
                    )
                    guided.append(server)
                    return server
                if policy.budgeted:
                    order = [
                        step.name
                        for _scenario, step in model.cyclic_order(resource.name)
                    ]
                    budgets = {name: resource.rr_budget(name) for name in order}
                    server = _GuidedRoundRobinServer(
                        simulator, resource.name, order, budgets,
                        script=scripts.get(resource.name, ()),
                        problems=report.problems,
                    )
                    guided.append(server)
                    return server
            server = _GuidedServer(
                simulator, resource.name,
                preemptive=preemptable and policy.preemptive,
                priority_based=policy.priority_based,
                script=scripts.get(resource.name, ()),
                preempts=preempts.get(resource.name, ()),
                problems=report.problems,
            )
            guided.append(server)
            return server

        # ordered (scenario, time) pairs: the witness's global release order
        # pins the interleaving of same-instant arrivals across scenarios
        release_sequence = [
            (event.scenario, event.time)
            for event in self.run.events
            if event.kind == "release"
        ]
        sim = _SimulationRun(
            self.model,
            seed=0,
            horizon=self._horizon(),
            arrival_overrides=release_sequence,
            server_factory=factory,
        )
        try:
            sim.run()
        except AnalysisError as exc:
            report.problems.append(f"replay crashed: {exc}")
            return report

        for server in guided:
            leftover = server.leftover_script()
            if leftover:
                report.problems.append(
                    f"{server.name}: {leftover} scripted dispatch(es) were never "
                    "realisable in the replay"
                )

        samples = sim.samples.get(self.run.requirement, [])
        report.samples = tuple(samples)
        tagged = self.run.tagged_index
        if tagged is not None:
            if tagged < len(samples):
                report.replayed_response = samples[tagged]
                if (
                    self.run.response_ticks is not None
                    and samples[tagged] != self.run.response_ticks
                ):
                    report.problems.append(
                        f"replayed response {samples[tagged]} != witness response "
                        f"{self.run.response_ticks} (tagged instance {tagged})"
                    )
            else:
                report.problems.append(
                    f"tagged instance {tagged} never completed in the replay "
                    f"({len(samples)} samples)"
                )
        return report


# ---------------------------------------------------------------------------
# Combined validation
# ---------------------------------------------------------------------------

@dataclass
class WitnessValidation:
    """Aggregate verdict of the TA step-check and the DES replay."""

    step_check: StepCheckReport
    replay: ReplayReport
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems and self.step_check.ok and self.replay.ok

    def describe(self) -> str:
        if self.ok:
            return (
                f"witness ok: TA step-check passed, DES replay reproduced "
                f"response {self.replay.replayed_response}"
            )
        lines = ["witness INVALID:"]
        for problem in (*self.problems, *self.step_check.problems, *self.replay.problems):
            lines.append(f"  {problem}")
        return "\n".join(lines)


def validate_witness(
    model: ArchitectureModel,
    run: ConcreteRun,
    generated: GeneratedModel | None = None,
) -> WitnessValidation:
    """Validate *run* against *model* with both machine checks.

    ``generated`` may pass in an already generated/compiled network (the
    analysis that produced the trace); otherwise the network is regenerated
    from the model and the witness's requirement, which is the path the
    counterexample replay takes.
    """
    if generated is None:
        generated = build_model(model, run.requirement)
    network = generated.compile()
    step_report = check_steps(network, run)

    problems: list[str] = []
    if generated.observer_clock is not None and run.response_ticks is not None:
        y = network.clock_id(generated.observer_clock)
        if not step_report.problems:
            final = step_report.final_clocks[y]
            if final != run.response_ticks:
                problems.append(
                    f"observer clock ends at {final}, witness claims "
                    f"{run.response_ticks}"
                )
    if generated.observer_condition is not None and not step_report.problems:
        from repro.core.properties import LocationProp

        condition = generated.observer_condition
        if isinstance(condition, LocationProp):
            inst, loc = network.location_id(condition.instance, condition.location)
            if step_report.final_locations[inst] != loc:
                problems.append(
                    "the schedule does not end in the observer's 'seen' state"
                )

    replay_report = ReplaySimulator(model, run).replay()
    return WitnessValidation(
        step_check=step_report, replay=replay_report, problems=problems
    )
