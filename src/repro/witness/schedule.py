"""Concrete witness runs: timed schedules, schedule events, serialisation.

A :class:`ConcreteRun` packages one concretised trace as an explicit timed
schedule of the architecture: the per-transition times of the underlying
network run plus the derived *schedule events* — releases, job starts,
preemptions, resumptions and completions per scenario instance — which are
what the Gantt rendering, the DES replay and the serialised witness expose.

Serialised witnesses use the ``repro-witness-v1`` schema.  A witness is
deliberately self-describing but *not* self-contained: it names transitions
by (instance, source location, target location), so validation always
re-derives guards and semantics from the architecture model it is replayed
against — a witness can never smuggle in its own interpretation of the
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.arch.model import ArchitectureModel
from repro.util.errors import WitnessError
from repro.witness.concretise import Concretisation, ConcretisedStep

__all__ = [
    "WITNESS_SCHEMA",
    "ScheduleEvent",
    "ConcreteRun",
    "derive_events",
    "run_to_dict",
    "run_from_dict",
]

#: schema marker of serialised witnesses
WITNESS_SCHEMA = "repro-witness-v1"

#: prefix of event-injection broadcast channels (see repro.arch.generator)
_INJECT_PREFIX = "inject_"


@dataclass(frozen=True)
class ScheduleEvent:
    """One schedulable event of the concrete run.

    ``kind`` is one of ``"release"`` (scenario arrival), ``"start"``,
    ``"preempt"``, ``"resume"`` and ``"complete"`` (job-level events on a
    resource).  ``job`` is the 0-based scenario-instance index the event
    belongs to (releases count arrivals; job events count FIFO per step).
    """

    kind: str
    time: int
    scenario: str
    step: str | None
    resource: str | None
    job: int

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "time": self.time,
            "scenario": self.scenario,
            "step": self.step,
            "resource": self.resource,
            "job": self.job,
        }


@dataclass(frozen=True)
class ConcreteRun:
    """A validated-replayable concrete witness schedule."""

    model_name: str
    requirement: str
    strategy: str
    #: the response time the schedule attains (observer clock at the end)
    response_ticks: int | None
    #: absolute transition times T_0..T_n
    times: tuple[int, ...]
    steps: tuple[ConcretisedStep, ...]
    events: tuple[ScheduleEvent, ...]
    #: concrete arrival times per scenario (the DES replay input)
    arrivals: Mapping[str, tuple[int, ...]] = field(default_factory=dict)
    #: 0-based index of the measured (tagged) scenario instance
    tagged_index: int | None = None
    #: scenario the measured requirement belongs to
    measured_scenario: str | None = None

    @property
    def total_ticks(self) -> int:
        return self.times[-1] if self.times else 0


# ---------------------------------------------------------------------------
# Schedule-event derivation
# ---------------------------------------------------------------------------

def _resource_location_map(model: ArchitectureModel) -> dict:
    """(resource, location name) -> semantic role, from the generator's naming.

    Mirrors :mod:`repro.arch.generator`: busy locations are
    ``exec_<scen>_<step>`` / ``send_<scen>_<step>`` (``sending_<i>`` for
    TDMA), preemption sub-locations ``pre_<lo...>_<hi...>``.  Building the
    names *forward* from the model sidesteps any parsing ambiguity of step
    names containing underscores.
    """
    mapping: dict[tuple[str, str], tuple] = {}
    for resource in (*model.processors.values(), *model.buses.values()):
        mapped = model.steps_on_resource(resource.name)
        if not mapped:
            continue
        if resource.policy.time_triggered:
            for index, (scenario, step) in enumerate(model.cyclic_order(resource.name)):
                mapping[(resource.name, f"sending_{index}")] = (
                    "busy", scenario.name, step.name,
                )
            continue
        for scenario, step in mapped:
            for prefix in ("exec", "send"):
                mapping[(resource.name, f"{prefix}_{scenario.name}_{step.name}")] = (
                    "busy", scenario.name, step.name,
                )
        for lo_scenario, lo_step in mapped:
            for hi_scenario, hi_step in mapped:
                name = (
                    f"pre_{lo_scenario.name}_{lo_step.name}"
                    f"_{hi_scenario.name}_{hi_step.name}"
                )
                mapping[(resource.name, name)] = (
                    "pre", hi_scenario.name, hi_step.name,
                    lo_scenario.name, lo_step.name,
                )
    return mapping


def derive_events(
    model: ArchitectureModel,
    steps: Sequence[ConcretisedStep],
) -> tuple[tuple[ScheduleEvent, ...], dict[str, tuple[int, ...]]]:
    """Derive the job-level schedule events of a concretised trace.

    Returns the event list (in trace order) and the concrete arrival times
    per scenario.  Jobs are indexed FIFO per (scenario, step), matching both
    the queue-counter semantics of the generated automata and the
    chain-instance bookkeeping of the DES baseline.
    """
    location_map = _resource_location_map(model)
    resource_names = set(model.processors) | set(model.buses)
    arrivals: dict[str, list[int]] = {name: [] for name in model.scenarios}
    starts: dict[tuple[str, str], int] = {}
    completes: dict[tuple[str, str], int] = {}
    events: list[ScheduleEvent] = []

    def job_event(kind: str, time: int, scenario: str, step: str, resource: str) -> None:
        key = (scenario, step)
        if kind == "start":
            job = starts.get(key, 0)
            starts[key] = job + 1
        else:  # preempt / resume / complete refer to the job currently in service
            job = completes.get(key, 0)
            if kind == "complete":
                completes[key] = job + 1
        events.append(ScheduleEvent(kind, time, scenario, step, resource, job))

    for cstep in steps:
        if cstep.channel and cstep.channel.startswith(_INJECT_PREFIX):
            scenario = cstep.channel[len(_INJECT_PREFIX):]
            if scenario in arrivals:
                events.append(ScheduleEvent(
                    "release", cstep.time, scenario, None, None, len(arrivals[scenario])
                ))
                arrivals[scenario].append(cstep.time)
        for instance, source, target in cstep.edges:
            if instance not in resource_names:
                continue
            src = location_map.get((instance, source))
            tgt = location_map.get((instance, target))
            if tgt is not None and tgt[0] == "busy" and (src is None or src[0] != "pre"):
                job_event("start", cstep.time, tgt[1], tgt[2], instance)
            elif src is not None and src[0] == "busy" and tgt is not None and tgt[0] == "pre":
                # the running job is preempted; the higher-priority job starts
                job_event("preempt", cstep.time, src[1], src[2], instance)
                job_event("start", cstep.time, tgt[1], tgt[2], instance)
            elif src is not None and src[0] == "pre" and tgt is not None and tgt[0] == "busy":
                # the preempting job completes; the preempted one resumes
                job_event("complete", cstep.time, src[1], src[2], instance)
                job_event("resume", cstep.time, src[3], src[4], instance)
            elif src is not None and src[0] == "busy" and (tgt is None or tgt[0] != "busy"):
                job_event("complete", cstep.time, src[1], src[2], instance)

    return tuple(events), {name: tuple(times) for name, times in arrivals.items()}


# ---------------------------------------------------------------------------
# Serialisation (repro-witness-v1)
# ---------------------------------------------------------------------------

def run_to_dict(run: ConcreteRun) -> dict:
    """Serialise a witness run into a plain JSON-able dict."""
    return {
        "schema": WITNESS_SCHEMA,
        "model": run.model_name,
        "requirement": run.requirement,
        "strategy": run.strategy,
        "response_ticks": run.response_ticks,
        "tagged_index": run.tagged_index,
        "measured_scenario": run.measured_scenario,
        "times": list(run.times),
        "steps": [
            {
                "index": step.index,
                "time": step.time,
                "delay": step.delay,
                "kind": step.kind,
                "channel": step.channel,
                "edges": [list(edge) for edge in step.edges],
                "resets": [list(pair) for pair in step.resets],
            }
            for step in run.steps
        ],
        "events": [event.to_dict() for event in run.events],
        "arrivals": {name: list(times) for name, times in run.arrivals.items()},
    }


def run_from_dict(data: Mapping) -> ConcreteRun:
    """Rebuild a :class:`ConcreteRun` from its ``repro-witness-v1`` form.

    The concrete clock valuations are not serialised — validators recompute
    them from the model, which is the whole point of a witness.
    """
    schema = data.get("schema")
    if schema != WITNESS_SCHEMA:
        raise WitnessError(
            f"unknown witness schema {schema!r}; this build reads {WITNESS_SCHEMA!r} only"
        )
    steps = tuple(
        ConcretisedStep(
            index=int(entry["index"]),
            time=int(entry["time"]),
            delay=int(entry["delay"]),
            kind=entry["kind"],
            channel=entry.get("channel"),
            edges=tuple(tuple(edge) for edge in entry.get("edges", ())),
            resets=tuple((int(c), int(v)) for c, v in entry.get("resets", ())),
        )
        for entry in data.get("steps", ())
    )
    events = tuple(
        ScheduleEvent(
            kind=entry["kind"],
            time=int(entry["time"]),
            scenario=entry["scenario"],
            step=entry.get("step"),
            resource=entry.get("resource"),
            job=int(entry.get("job", 0)),
        )
        for entry in data.get("events", ())
    )
    response = data.get("response_ticks")
    tagged = data.get("tagged_index")
    return ConcreteRun(
        model_name=data.get("model", ""),
        requirement=data.get("requirement", ""),
        strategy=data.get("strategy", "earliest"),
        response_ticks=None if response is None else int(response),
        times=tuple(int(t) for t in data.get("times", (0,))),
        steps=steps,
        events=events,
        arrivals={
            name: tuple(int(t) for t in times)
            for name, times in data.get("arrivals", {}).items()
        },
        tagged_index=None if tagged is None else int(tagged),
        measured_scenario=data.get("measured_scenario"),
    )
