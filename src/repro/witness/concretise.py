"""Trace concretisation: from symbolic zones to explicit timed schedules.

A symbolic trace produced by the reachability engine fixes the *discrete*
run (which transitions fired, in which order) but leaves the firing times
symbolic — each :class:`~repro.core.successors.SymbolicState` carries a whole
zone of clock valuations.  This module picks one concrete, integer firing
time per transition such that every guard, every invariant (at entry *and*
over the whole delay), every urgency constraint and every reset along the
trace is honoured — the diagnostic-trace concretisation step of the UPPAAL
workflow the paper relies on.

The solver builds a *schedule DBM* over the absolute transition times
``T_1 .. T_n`` (the DBM reference clock is the start instant ``T_0 = 0``).
The key observation is that every constraint of the trace is a difference
constraint over the ``T_k``: with ``(r, v)`` the step index and value of the
last reset of clock ``x`` before transition ``k``, the value of ``x`` at
``T_k`` is ``v + T_k - T_r``, so a guard ``x_i - x_j ⋈ c`` becomes
``T_{r_j} - T_{r_i} ⋈ c - v_i + v_j`` — one entry of the schedule DBM.  This
exploits the existing pooled int64 DBM kernels (the incremental rank-1
``constrain``), so concretising even long traces stays a handful of
vectorised operations per constraint.

Because the schedule DBM replays the trace *without* extrapolation, a
feasible system is a proof that the symbolic trace is concretely realisable;
an infeasible one (impossible for traces of this library's diagonal-free
models, but checked anyway) raises :class:`~repro.util.errors.WitnessError`
rather than emitting a bogus schedule.

Three delay strategies choose within the feasible polytope: ``"earliest"``
(greedy minimal firing times), ``"latest"`` (maximal, falling back to the
lower bound where a time is unbounded above) and ``"midpoint"``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping

from repro.core.dbm import (
    DBM,
    INFINITY_RAW,
    LE_ZERO,
    bound,
    bound_is_strict,
    bound_value,
)
from repro.core.network import CompiledNetwork
from repro.core.reachability import Trace
from repro.core.successors import SuccessorGenerator
from repro.util.errors import WitnessError

__all__ = ["STRATEGIES", "ConcretisedStep", "Concretisation", "concretise_trace"]

#: the supported delay-selection strategies
STRATEGIES: tuple[str, ...] = ("earliest", "latest", "midpoint")


@dataclass(frozen=True)
class ConcretisedStep:
    """One transition of a concretised trace, with explicit times."""

    #: 1-based transition index (``trace.steps[index]`` is the target state)
    index: int
    #: absolute firing time in model ticks
    time: int
    #: time spent in the source state before this transition fired
    delay: int
    #: "internal" | "binary" | "broadcast"
    kind: str
    channel: str | None
    #: participating edges as (instance, source location, target location)
    edges: tuple[tuple[str, str, str], ...]
    #: evaluated clock resets applied by the transition (clock id, value)
    resets: tuple[tuple[int, int], ...]
    #: concrete clock valuation just before the transition (post-delay),
    #: indexed by network clock id (entry 0 is the constant-zero reference)
    before: tuple[int, ...] = ()
    #: concrete clock valuation just after the transition (post-reset)
    after: tuple[int, ...] = ()


@dataclass(frozen=True)
class Concretisation:
    """A fully timed instantiation of one symbolic trace."""

    strategy: str
    #: absolute times ``T_0 .. T_n`` (``T_0`` is always 0)
    times: tuple[int, ...]
    steps: tuple[ConcretisedStep, ...]

    @property
    def total_ticks(self) -> int:
        return self.times[-1] if self.times else 0


def _schedule_dim(count: int) -> int:
    """Round the schedule-DBM dimension up to a power of two.

    The pooled DBM kernels cache scratch buffers per dimension; traces come
    in arbitrary lengths, so rounding keeps the set of live scratch sizes
    logarithmic instead of one per trace length.  The unused trailing
    variables stay unconstrained and never affect the used entries.
    """
    return max(4, 1 << (int(count) - 1).bit_length())


class _ScheduleSystem:
    """The difference-constraint system over the transition times."""

    def __init__(self, count: int):
        self.count = count
        self.dbm = DBM(_schedule_dim(count))

    def constrain(self, a: int, b: int, raw: int, what: str) -> None:
        """Impose ``T_a - T_b (raw)``; raise with context when infeasible."""
        if a == b:
            # constant constraint 0 ⋈ c
            if raw < LE_ZERO:
                raise WitnessError(f"trace is not concretisable: {what} is contradictory")
            return
        if not self.dbm.constrain(a, b, raw):
            raise WitnessError(
                f"trace is not concretisable: {what} contradicts the earlier constraints"
            )

    def bounds(self, k: int) -> tuple[int, int | None]:
        """Current integer bounds ``[lo, hi]`` of ``T_k`` (``hi=None``: unbounded)."""
        lo_raw = self.dbm.get(0, k)  # T_0 - T_k <= c  ⇒  T_k >= -c
        lo = -bound_value(lo_raw) + (1 if bound_is_strict(lo_raw) else 0)
        hi_raw = self.dbm.get(k, 0)
        if hi_raw >= INFINITY_RAW:
            return lo, None
        hi = bound_value(hi_raw) - (1 if bound_is_strict(hi_raw) else 0)
        return lo, hi

    def fix(self, k: int, value: int) -> None:
        feasible = self.dbm.constrain(k, 0, bound(value)) and self.dbm.constrain(
            0, k, bound(-value)
        )
        if not feasible:
            raise WitnessError(
                f"internal error: fixing T_{k} = {value} emptied the schedule system"
            )

    def discard(self) -> None:
        self.dbm.discard()


def _matched_plans(generator: SuccessorGenerator, trace: Trace) -> list:
    """Re-identify the fired plan of every transition of *trace*.

    Matching is by target discrete state plus the recorded transition label;
    plans are the memoised, fully evaluated firing combinations of the
    successor generator, so the returned objects carry concrete raw guards,
    resets and target vectors.
    """
    plans = []
    for k in range(1, len(trace.steps)):
        parent = trace.steps[k - 1].state
        child = trace.steps[k]
        info = generator._discrete_info(parent.locations, parent.variables)
        if info.plans is None:
            generator._build_plans(info, parent.locations, parent.variables)
        key = child.state.discrete_bytes()
        candidates = [
            i for i, plan in enumerate(info.plans)
            if plan.key_bytes == key and plan.error is None
        ]
        chosen = None
        if child.label is not None:
            for i in candidates:
                if generator._plan_label(info, i) == child.label:
                    chosen = info.plans[i]
                    break
        if chosen is None and len(candidates) == 1:
            chosen = info.plans[candidates[0]]
        if chosen is None:
            raise WitnessError(
                f"step {k}: cannot re-identify the fired transition "
                f"({len(candidates)} candidate plans match the discrete target)"
            )
        plans.append(chosen)
    return plans


def _clock_term(records, t: int, clock: int) -> tuple[int, int]:
    """``(variable, offset)`` such that the clock's value at ``T_t`` is
    ``offset + T_t - T_variable`` (the reference clock is constantly zero)."""
    if clock == 0:
        return t, 0
    return records[clock]


def concretise_trace(
    network: CompiledNetwork,
    trace: Trace,
    strategy: str = "earliest",
    final_clock_values: Mapping[int, int] | None = None,
    generator: SuccessorGenerator | None = None,
    max_seconds: float | None = None,
) -> Concretisation:
    """Pick concrete integer firing times for every transition of *trace*.

    ``final_clock_values`` pins the value of named clocks at the final
    transition time (clock id -> exact value); WCRT witnesses use it to force
    the observer clock to the reported worst case, so the returned schedule
    *attains* the claimed response time rather than merely staying feasible.

    ``max_seconds`` is a cooperative wall-clock budget over the
    constraint-building and time-fixing loops (checked once per
    transition); exceeding it raises :class:`WitnessError` -- long traces
    over wide schedule DBMs are the one witness stage that can run away.
    """
    if strategy not in STRATEGIES:
        raise WitnessError(f"unknown delay strategy {strategy!r} (expected {STRATEGIES})")
    if not trace.steps:
        raise WitnessError("cannot concretise an empty trace")
    deadline = (
        time.perf_counter() + max_seconds if max_seconds is not None else None
    )

    def check_deadline(k: int, stage: str) -> None:
        if deadline is not None and time.perf_counter() > deadline:
            raise WitnessError(
                f"witness concretisation exceeded its {max_seconds}s budget "
                f"({stage}, transition {k} of {len(trace.steps) - 1})"
            )
    generator = generator or SuccessorGenerator(network)
    n = len(trace.steps) - 1
    plans = _matched_plans(generator, trace)
    infos = [
        generator._discrete_info(step.state.locations, step.state.variables)
        for step in trace.steps
    ]

    system = _ScheduleSystem(n + 1)
    try:
        #: per network clock: (transition index of last reset, reset value)
        records: list[tuple[int, int]] = [(0, 0)] * network.dim

        def apply(i: int, j: int, raw: int, t: int, what: str) -> None:
            var_i, off_i = _clock_term(records, t, i)
            var_j, off_j = _clock_term(records, t, j)
            system.constrain(var_j, var_i, raw - 2 * off_i + 2 * off_j, what)

        # invariants of the initial state hold at its entry (time 0)
        for i, j, raw in infos[0].invariants:
            apply(i, j, raw, 0, "initial invariant")

        for k in range(1, n + 1):
            check_deadline(k, "building constraints")
            plan = plans[k - 1]
            system.constrain(k - 1, k, LE_ZERO, f"time monotonicity at step {k}")
            if infos[k - 1].urgent:
                # no delay in urgent states (committed/urgent locations,
                # enabled urgent-channel synchronisations)
                system.constrain(k, k - 1, LE_ZERO, f"urgency of state {k - 1}")
            # the source state's upper-bound invariants must survive the
            # delay, i.e. still hold at the exit instant (lower-bound and
            # difference invariants are monotone/constant under delay and
            # were imposed at entry)
            for i, j, raw in infos[k - 1].invariants:
                if j == 0:
                    apply(i, j, raw, k, f"invariant of state {k - 1} at exit")
            for i, j, raw in plan.guards:
                apply(i, j, raw, k, f"guard of step {k}")
            for clock, value in plan.resets:
                records[clock] = (k, value)
            for i, j, raw in infos[k].invariants:
                apply(i, j, raw, k, f"invariant of state {k} at entry")

        if final_clock_values:
            for clock, value in final_clock_values.items():
                var, off = _clock_term(records, n, clock)
                system.constrain(n, var, bound(value - off),
                                 f"pinned final value of clock {clock}")
                system.constrain(var, n, bound(-(value - off)),
                                 f"pinned final value of clock {clock}")

        # fix the times front to back; the schedule DBM stays canonical, so
        # any integer within the current bounds keeps the tail feasible
        times = [0] * (n + 1)
        for k in range(1, n + 1):
            check_deadline(k, "fixing firing times")
            lo, hi = system.bounds(k)
            if hi is not None and hi < lo:
                raise WitnessError(
                    f"no integer firing time exists for transition {k} "
                    f"(bounds collapsed to ({lo}, {hi}))"
                )
            if strategy == "earliest" or hi is None:
                value = lo
            elif strategy == "latest":
                value = hi
            else:  # midpoint
                value = (lo + hi) // 2
            system.fix(k, value)
            times[k] = value
    finally:
        system.discard()

    # replay the reset records against the fixed times to obtain the
    # concrete clock valuations around every transition
    records = [(0, 0)] * network.dim
    steps: list[ConcretisedStep] = []
    for k in range(1, n + 1):
        plan = plans[k - 1]
        before = tuple(
            0 if clock == 0 else records[clock][1] + times[k] - times[records[clock][0]]
            for clock in range(network.dim)
        )
        for clock, value in plan.resets:
            records[clock] = (k, value)
        after = tuple(
            0 if clock == 0 else records[clock][1] + times[k] - times[records[clock][0]]
            for clock in range(network.dim)
        )
        edges = tuple(
            (
                network.instances[edge.instance].name,
                network.instances[edge.instance].locations[edge.source].name,
                network.instances[edge.instance].locations[edge.target].name,
            )
            for edge in plan.participants
        )
        steps.append(
            ConcretisedStep(
                index=k,
                time=times[k],
                delay=times[k] - times[k - 1],
                kind=plan.kind,
                channel=plan.channel,
                edges=edges,
                resets=tuple(plan.resets),
                before=before,
                after=after,
            )
        )

    return Concretisation(strategy=strategy, times=tuple(times), steps=tuple(steps))
