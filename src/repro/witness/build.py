"""High-level witness construction from WCRT analyses.

Glue between the analysis façade (:func:`repro.arch.analysis.analyze_wcrt`)
and the concretiser: take the symbolic witness trace of an exact WCRT
result, pin the observer clock to the reported worst case, concretise the
delays and derive the job-level schedule — the artefact that *proves
attainment* of the claimed response time.
"""

from __future__ import annotations

from dataclasses import replace

from repro.arch.analysis import RequirementAnalysis, TimedAutomataSettings, analyze_wcrt
from repro.arch.generator import done_channel, inject_channel
from repro.arch.model import ArchitectureModel
from repro.util.errors import WitnessError
from repro.witness.concretise import concretise_trace
from repro.witness.schedule import ConcreteRun, derive_events

__all__ = ["build_witness", "wcrt_witness"]


def _start_channel(analysis: RequirementAnalysis) -> str:
    """The broadcast channel whose occurrence starts the measurement."""
    requirement = analysis.generated.requirement
    if requirement.start_after is None:
        return inject_channel(requirement.scenario)
    return done_channel(requirement.scenario, requirement.start_after)


def build_witness(
    model: ArchitectureModel,
    analysis: RequirementAnalysis,
    strategy: str = "earliest",
    max_seconds: float | None = None,
) -> ConcreteRun:
    """Concretise the witness trace of *analysis* into a timed schedule.

    The observer clock is pinned to ``analysis.wcrt_ticks`` at the final
    transition, so the returned schedule attains the reported WCRT (exact
    results) or the reported attained lower bound (budgeted explorations).
    ``max_seconds`` bounds the concretisation wall-clock cooperatively
    (see :func:`repro.witness.concretise.concretise_trace`).
    """
    detail = analysis.detail
    if detail.trace is None:
        raise WitnessError(
            "the analysis carries no trace; re-run with "
            "TimedAutomataSettings(record_traces=True)"
        )
    if analysis.wcrt_ticks is None:
        raise WitnessError("no response was observed; there is nothing to witness")
    if not detail.attained:
        raise WitnessError(
            "the reported value is a non-attained bound (extrapolation ceiling "
            "hit); no schedule can demonstrate it"
        )
    generated = analysis.generated
    network = generated.compile()
    observer_clock = network.clock_id(generated.observer_clock)
    concretisation = concretise_trace(
        network,
        detail.trace,
        strategy,
        final_clock_values={observer_clock: analysis.wcrt_ticks},
        max_seconds=max_seconds,
    )
    events, arrivals = derive_events(model, concretisation.steps)

    # the tagged instance: the start-channel occurrence on which the observer
    # reset its clock (the only start edge carrying an observer-clock reset)
    start_channel = _start_channel(analysis)
    tagged_index = None
    start_seen = 0
    for step in concretisation.steps:
        if step.channel == start_channel:
            if any(clock == observer_clock for clock, _value in step.resets):
                tagged_index = start_seen
            start_seen += 1

    response = None
    if concretisation.steps:
        response = concretisation.steps[-1].before[observer_clock]
    if response != analysis.wcrt_ticks:
        raise WitnessError(
            f"internal error: concretised schedule ends with observer clock "
            f"{response}, expected {analysis.wcrt_ticks}"
        )
    if tagged_index is None:
        raise WitnessError(
            "internal error: the trace never tags a measured instance"
        )

    return ConcreteRun(
        model_name=model.name,
        requirement=analysis.requirement,
        strategy=strategy,
        response_ticks=analysis.wcrt_ticks,
        times=concretisation.times,
        steps=concretisation.steps,
        events=events,
        arrivals=arrivals,
        tagged_index=tagged_index,
        measured_scenario=analysis.scenario,
    )


def wcrt_witness(
    model: ArchitectureModel,
    requirement: str,
    settings: TimedAutomataSettings | None = None,
    strategy: str = "earliest",
) -> tuple[RequirementAnalysis, ConcreteRun]:
    """Analyse one requirement and return (analysis, concrete witness).

    Forces ``record_traces=True`` on the settings; everything else is passed
    through unchanged.
    """
    settings = settings or TimedAutomataSettings()
    if not settings.record_traces:
        settings = replace(settings, record_traces=True)
    analysis = analyze_wcrt(model, requirement, settings)
    return analysis, build_witness(model, analysis, strategy)
