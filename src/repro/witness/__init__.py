"""Concrete witness schedules: trace concretisation + cross-engine replay.

The witness subsystem turns the symbolic diagnostic traces of the exact
timed-automata engine into *machine-checked concrete schedules*:

* :func:`~repro.witness.concretise.concretise_trace` — a DBM delay solver
  that picks explicit integer firing times for every transition of a
  symbolic trace (earliest / latest / midpoint strategies);
* :func:`~repro.witness.build.build_witness` /
  :func:`~repro.witness.build.wcrt_witness` — pin the observer clock to the
  reported WCRT and package the schedule as a :class:`ConcreteRun` of
  releases, starts, preemptions and completions;
* :func:`~repro.witness.replay.validate_witness` — double validation: a TA
  step-checker re-executing the schedule under the concrete semantics, and a
  deterministic trace-driven DES replay over the existing servers that must
  reproduce the witness response exactly;
* ``repro-witness-v1`` serialisation
  (:func:`~repro.witness.schedule.run_to_dict` /
  :func:`~repro.witness.schedule.run_from_dict`) — shipped inside diffcheck
  counterexamples and rendered as a Gantt timeline by
  :func:`repro.io.report.format_gantt`.

See ``docs/witnesses.md`` for the semantics and the schema.
"""

from repro.witness.build import build_witness, wcrt_witness
from repro.witness.concretise import (
    STRATEGIES,
    Concretisation,
    ConcretisedStep,
    concretise_trace,
)
from repro.witness.replay import (
    ReplayReport,
    ReplaySimulator,
    StepCheckReport,
    WitnessValidation,
    check_steps,
    validate_witness,
)
from repro.witness.schedule import (
    WITNESS_SCHEMA,
    ConcreteRun,
    ScheduleEvent,
    derive_events,
    run_from_dict,
    run_to_dict,
)

__all__ = [
    "STRATEGIES",
    "WITNESS_SCHEMA",
    "Concretisation",
    "ConcretisedStep",
    "ConcreteRun",
    "ScheduleEvent",
    "ReplayReport",
    "ReplaySimulator",
    "StepCheckReport",
    "WitnessValidation",
    "build_witness",
    "check_steps",
    "concretise_trace",
    "derive_events",
    "run_from_dict",
    "run_to_dict",
    "validate_witness",
    "wcrt_witness",
]
