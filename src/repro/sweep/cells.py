"""Sweep cells: picklable descriptions of one analysis each.

A :class:`SweepCell` names everything a worker process needs to reproduce
one cell of the paper's tables (or of a user-defined grid): the model
factory to call, the scenario combination and event configuration to apply,
the requirement to measure, and the flat
:class:`~repro.arch.analysis.TimedAutomataSettings` keyword arguments.
Cells carry only primitives (strings, ints, dicts), so they cross the
``spawn`` process boundary without dragging compiled networks or zone
buffers along -- each worker rebuilds its models from the factory and keeps
them cached for the cells it receives.

The grid builders mirror the paper's experiments:

* :func:`core_scaling_cells` -- the three exhaustive ``AL+TMC`` cells of the
  core scaling benchmark,
* :func:`table1_cells` -- the 5 x 5 requirement/event-model grid of Table 1
  with the benchmark suite's budget policy,
* :func:`table2_cells` -- the timed-automata columns (po, pno) of Table 2,
* :func:`grid_cells` -- arbitrary user-defined combination x configuration x
  requirement products over :mod:`repro.casestudy.configurations` (or any
  other model factory).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.casestudy.configurations import (
    COMBINATIONS,
    EVENT_CONFIGURATIONS,
    POLICY_VARIANTS,
    TABLE1_ROWS,
)
from repro.util.errors import ModelError

__all__ = [
    "DEFAULT_MODEL_FACTORY",
    "SweepCell",
    "DiffCheckCell",
    "core_scaling_cells",
    "table1_cells",
    "table2_cells",
    "policy_variant_cells",
    "grid_cells",
    "diffcheck_cells",
]

#: dotted path of the default architecture-model factory (the case study)
DEFAULT_MODEL_FACTORY = "repro.casestudy.build_radio_navigation"

#: (combination, configuration) pairs whose state space explodes; the paper
#: (and the benchmark suite) analyses them with a budgeted random
#: depth-first search and reports lower bounds
HEAVY_CELLS = {("CV+TMC", "pj"), ("CV+TMC", "bur"), ("AL+TMC", "pj"), ("AL+TMC", "bur")}


@dataclass(frozen=True)
class SweepCell:
    """One cell of a scenario sweep (picklable, primitives only)."""

    #: display / trajectory-point name, e.g. ``"AL+TMC/pno/TMC"``
    name: str
    #: requirement to measure (a requirement name of the model)
    requirement: str
    #: scenario combination key (see ``COMBINATIONS``); None = use the
    #: factory's model as-is
    combination: str | None = None
    #: event configuration key (see ``EVENT_CONFIGURATIONS``)
    configuration: str | None = None
    #: resource-policy variant key (see ``POLICY_VARIANTS``); None = "fp"
    policy: str | None = None
    #: keyword arguments for :class:`~repro.arch.analysis.TimedAutomataSettings`
    settings: Mapping[str, object] = field(default_factory=dict)
    #: dotted path of a zero-argument callable returning the architecture model
    model_factory: str = DEFAULT_MODEL_FACTORY
    #: build + validate a concrete witness schedule for the cell's WCRT:
    #: a delay strategy name ("earliest"/"latest"/"midpoint"), "all" for all
    #: three, or None (default) to skip; forces trace recording
    witness: str | None = None
    #: run the cell bound-guided (:mod:`repro.portfolio.guided`): SymTA/MPA
    #: clamp the observer ceiling (and a budgeted DES run seeds the binary
    #: search) before the exact exploration -- same WCRT, fewer states
    guided: bool = False

    def __post_init__(self):
        if (self.combination is None) != (self.configuration is None):
            raise ModelError(
                "combination and configuration must be given together (or neither)"
            )
        if self.policy is not None and self.policy not in POLICY_VARIANTS:
            raise ModelError(
                f"unknown policy variant {self.policy!r} (expected one of "
                f"{POLICY_VARIANTS})"
            )
        if self.witness is not None and self.witness not in (
            "all", "earliest", "latest", "midpoint"
        ):
            raise ModelError(
                f"unknown witness strategy {self.witness!r} (expected "
                "'earliest', 'latest', 'midpoint' or 'all')"
            )


@dataclass(frozen=True)
class DiffCheckCell:
    """One differential-fuzzing seed window (picklable, primitives only).

    The second cell kind of the sweep runner: instead of one table analysis,
    a worker receiving this cell runs a whole
    :func:`repro.diffcheck.run_campaign` seed window (sample random models,
    cross-validate all four engines, shrink and serialise violations).
    ``config`` is a nested-primitives
    :meth:`repro.diffcheck.CampaignConfig.to_dict` payload, so the cell
    crosses the ``spawn`` boundary as cheaply as a table cell does.
    """

    #: display / trajectory-point name, e.g. ``"diffcheck/seeds0-99"``
    name: str
    #: first sampler seed of the window
    seed_start: int
    #: number of consecutive seeds to fuzz
    count: int
    #: serialised :class:`repro.diffcheck.CampaignConfig`
    config: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self):
        if self.count <= 0:
            raise ModelError("a diffcheck cell must cover at least one seed")


def diffcheck_cells(
    seed_start: int,
    models: int,
    batch: int = 25,
    config: Mapping[str, object] | None = None,
) -> list[DiffCheckCell]:
    """Split *models* consecutive seeds into sweep cells of *batch* seeds."""
    if models <= 0:
        raise ModelError("a diffcheck campaign must fuzz at least one model")
    if batch <= 0:
        raise ModelError("diffcheck batch size must be positive")
    cells = []
    for start in range(seed_start, seed_start + models, batch):
        count = min(batch, seed_start + models - start)
        cells.append(
            DiffCheckCell(
                name=f"diffcheck/seeds{start}-{start + count - 1}",
                seed_start=start,
                count=count,
                config=dict(config or {}),
            )
        )
    return cells


def _cell_name(combination: str, configuration: str, requirement: str) -> str:
    return f"{combination}/{configuration}/{requirement}"


def core_scaling_cells() -> list[SweepCell]:
    """The three exhaustive cells of ``benchmarks/bench_core_scaling.py``.

    Reductions are explicitly off: these cells are the unreduced baseline
    whose state counts stay comparable across the whole trajectory history;
    the ``#reduced`` twin cells measure the reductions against them.
    """
    return [
        SweepCell(
            name=f"AL+TMC/{configuration}",
            requirement="TMC",
            combination="AL+TMC",
            configuration=configuration,
            settings={"search_order": "bfs", "max_states": None, "seed": 1,
                      "reductions": "none"},
        )
        for configuration in ("po", "pno", "sp")
    ]


def table1_cells(full_scale: bool = False) -> list[SweepCell]:
    """The 25 cells of Table 1 under the benchmark suite's budget policy.

    ``full_scale`` mirrors ``REPRO_FULL_SCALE=1`` on the serial benchmark
    path (``benchmarks/conftest.state_budget``): every default state budget
    is dropped; the jitter/burst cells keep their random depth-first order.
    """
    cells = []
    for row in TABLE1_ROWS:
        for configuration in EVENT_CONFIGURATIONS:
            heavy = (row.combination, configuration) in HEAVY_CELLS
            if heavy:
                budget, order = None if full_scale else 4_000, "rdfs"
            elif row.combination == "CV+TMC":
                budget, order = None if full_scale else 4_000, "bfs"
            else:
                budget, order = None if full_scale else 25_000, "bfs"
            cells.append(
                SweepCell(
                    name=_cell_name(row.combination, configuration, row.requirement),
                    requirement=row.requirement,
                    combination=row.combination,
                    configuration=configuration,
                    settings={"search_order": order, "max_states": budget, "seed": 1},
                )
            )
    return cells


def policy_variant_cells(full_scale: bool = False) -> list[SweepCell]:
    """The round-robin / TDMA-bus policy variants of the ``AL+TMC`` cells.

    The round-robin variants explore exhaustively (their state spaces stay
    small); the TDMA-bus variants inherit the heavy-cell budget policy — the
    slot machinery of the bus automaton interleaves with every other clock,
    so they report budgeted lower bounds unless ``full_scale`` lifts the
    budgets.
    """
    cells = []
    for configuration in ("po", "pno"):
        cells.append(
            SweepCell(
                name=f"AL+TMC/{configuration}#rr",
                requirement="TMC",
                combination="AL+TMC",
                configuration=configuration,
                policy="rr",
                settings={"search_order": "bfs", "max_states": None, "seed": 1},
            )
        )
        cells.append(
            SweepCell(
                name=f"AL+TMC/{configuration}#tdma-bus",
                requirement="TMC",
                combination="AL+TMC",
                configuration=configuration,
                policy="tdma-bus",
                settings={
                    "search_order": "rdfs",
                    "max_states": None if full_scale else 4_000,
                    "seed": 1,
                },
            )
        )
    return cells


def table2_cells(full_scale: bool = False) -> list[SweepCell]:
    """The timed-automata cells of Table 2 (po and pno per requirement row)."""
    cells = []
    for row in TABLE1_ROWS:
        budget = None if full_scale else (4_000 if row.combination == "CV+TMC" else 25_000)
        for configuration in ("po", "pno"):
            cells.append(
                SweepCell(
                    name=_cell_name(row.combination, configuration, row.requirement),
                    requirement=row.requirement,
                    combination=row.combination,
                    configuration=configuration,
                    settings={"max_states": budget},
                )
            )
    return cells


def grid_cells(
    combinations: Sequence[str] | None = None,
    configurations: Sequence[str] | None = None,
    requirements: Iterable[str] | None = None,
    settings: Mapping[str, object] | None = None,
    model_factory: str = DEFAULT_MODEL_FACTORY,
    policies: Sequence[str] | None = None,
) -> list[SweepCell]:
    """A user-defined cartesian sweep grid over the case-study vocabulary.

    Defaults cover the full product: every scenario combination, every event
    configuration and (per combination) the requirements Table 1 measures in
    it, all under the paper's fixed-priority deployment.  ``policies`` adds
    resource-policy variants (see ``POLICY_VARIANTS``) as a fourth grid
    axis; ``settings`` applies to every cell.
    """
    combinations = list(combinations) if combinations is not None else list(COMBINATIONS)
    configurations = (
        list(configurations) if configurations is not None else list(EVENT_CONFIGURATIONS)
    )
    policy_list = list(policies) if policies is not None else ["fp"]
    for combination in combinations:
        if combination not in COMBINATIONS:
            raise ModelError(f"unknown scenario combination {combination!r}")
    for configuration in configurations:
        if configuration not in EVENT_CONFIGURATIONS:
            raise ModelError(f"unknown event configuration {configuration!r}")
    for policy in policy_list:
        if policy not in POLICY_VARIANTS:
            raise ModelError(f"unknown policy variant {policy!r}")
    wanted = list(requirements) if requirements is not None else None
    cells = []
    for combination in combinations:
        row_requirements = (
            wanted
            if wanted is not None
            else [row.requirement for row in TABLE1_ROWS if row.combination == combination]
        )
        for configuration in configurations:
            for requirement in row_requirements:
                for policy in policy_list:
                    name = _cell_name(combination, configuration, requirement)
                    if policy != "fp":
                        name = f"{name}#{policy}"
                    cells.append(
                        SweepCell(
                            name=name,
                            requirement=requirement,
                            combination=combination,
                            configuration=configuration,
                            policy=None if policy == "fp" else policy,
                            settings=dict(settings or {}),
                            model_factory=model_factory,
                        )
                    )
    return cells
