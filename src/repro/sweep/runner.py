"""The parallel scenario-sweep runner.

Fans a list of :class:`~repro.sweep.cells.SweepCell` analyses across worker
processes and aggregates the results into a ``repro-bench-v1`` trajectory
(:mod:`repro.perf.trajectory`).  Design points:

* **Spawn-safe workers.**  The default start method is ``spawn``: workers
  import :mod:`repro` afresh, so every process owns a private zone pool,
  scratch-buffer cache and discrete-plan memo -- nothing is shared, nothing
  can alias.  ``fork`` (cheaper on Linux) is also supported; the worker
  initialiser then re-initialises the process-wide pool and kernel caches
  (:func:`repro.core.zonepool.reset_global_pool`,
  :func:`repro.core.dbm.reset_process_caches` -- both also registered as
  ``os.register_at_fork`` hooks) so a worker never runs on free lists
  snapshotted mid-mutation from the parent.
* **Cells in, primitives out.**  Cells carry only strings and ints; results
  come back as flat :class:`CellResult` records (verdicts, state counts,
  throughput), never compiled networks or zones.  Workers cache the model
  built by each cell's factory, so a worker that receives several cells of
  one sweep pays the architecture generation once.
* **Serial fallback.**  ``workers=1`` (or a single cell) runs in-process
  with identical semantics -- the mode the correctness tests pin against
  the parallel runs.
* **Supervised execution.**  Multiprocess dispatch goes through
  :class:`repro.sweep.supervisor.Supervisor` rather than a bare
  ``Pool.map``: workers are crash-isolated, hard per-cell deadlines are
  enforced by SIGKILL, transient worker deaths are retried with backoff,
  and (opt-in via :class:`~repro.sweep.supervisor.SupervisorConfig`)
  unrecoverable cells degrade to analytic bounds or are quarantined
  instead of sinking the sweep.  Progress can be journaled to a
  ``repro-checkpoint-v1`` file (:mod:`repro.sweep.checkpoint`) and resumed
  after an interruption with a deterministic merge.
"""

from __future__ import annotations

import importlib
import os
import time
from dataclasses import asdict, dataclass
from typing import Callable, Mapping, Sequence

from repro.arch.analysis import TimedAutomataSettings, analyze_wcrt
from repro.casestudy.configurations import apply_policy_variant, configure
from repro.perf import verify_anchors, write_bench_json
from repro.sweep.cells import DiffCheckCell, SweepCell
from repro.sweep.checkpoint import CheckpointJournal
from repro.sweep.faults import maybe_inject
from repro.util.errors import AnalysisError

__all__ = ["CellResult", "SweepResult", "cell_model", "run_cell", "run_sweep",
           "verify_cells"]


@dataclass(frozen=True)
class CellResult:
    """Flat, picklable outcome of one sweep cell."""

    name: str
    requirement: str
    combination: str | None
    configuration: str | None
    #: WCRT in model ticks (or best lower bound); None when unobserved
    wcrt_ticks: int | None
    #: the same value in milliseconds
    wcrt_ms: float | None
    #: True when the WCRT is only a lower bound (budgeted exploration)
    is_lower_bound: bool
    #: requirement verdict (None when undecidable from a lower bound)
    satisfied: bool | None
    states_explored: int
    states_stored: int
    transitions: int
    inclusions: int
    explore_seconds: float
    states_per_second: float
    termination: str
    #: wall-clock seconds of the whole cell (generation + exploration)
    wall_seconds: float
    #: pid of the worker that ran the cell (observability)
    worker_pid: int
    #: reduction counters (docs/reductions.md); zero when the corresponding
    #: reduction is off or never fired (dropped from trajectory points then)
    states_subsumed_lu: int = 0
    plans_commuted: int = 0
    keys_folded: int = 0
    #: sharded-exploration topology counters (docs/performance.md); zero when
    #: the cell ran on the scalar engine (dropped from trajectory points then)
    shard_workers: int = 0
    shard_handoffs: int = 0
    shard_steals: int = 0
    #: cell kind: "wcrt" (table analysis) or "diffcheck" (fuzzing window)
    kind: str = "wcrt"
    #: diffcheck cells only: models that went through all four engines
    models_checked: int = 0
    #: diffcheck cells only: models where the TA engine failed but the
    #: robust engines still asserted the partial ordering
    models_degraded: int = 0
    #: diffcheck cells only: soundness-ordering violations found
    violations: int = 0
    #: diffcheck cells only: counterexample JSON paths written by the worker
    counterexamples: tuple[str, ...] = ()
    #: diffcheck cells only: sampled models per wall-clock second
    models_per_second: float = 0.0
    #: diffcheck cells only: (policy name, checked-model count) pairs
    policy_mix: tuple[tuple[str, int], ...] = ()
    #: witnesses built for this cell (diffcheck: per counterexample; wcrt
    #: cells: one per requested strategy) / of those, fully validated
    witnesses_attempted: int = 0
    witnesses_validated: int = 0
    #: per-strategy reasons for witnesses that failed to build or validate
    witness_problems: tuple[str, ...] = ()
    #: dispatch attempts the cell consumed (>1 after supervised retries)
    attempts: int = 1
    #: why the exact run failed, for degraded/quarantined cells
    failure: str = ""
    #: degraded cells only: DES lower bound on the requirement's WCRT
    degraded_lower_ticks: int | None = None
    degraded_lower_ms: float | None = None
    #: degraded cells only: tightest SymTA/MPA upper bound
    degraded_upper_ticks: int | None = None
    degraded_upper_ms: float | None = None
    #: True when the cell ran bound-guided (repro.portfolio.guided)
    guided: bool = False
    #: guided cells only: the analytic upper bound that clamped the ceiling
    analytic_upper_ticks: int | None = None

    @property
    def usable(self) -> bool:
        """True when the cell carries data (exact or degraded bounds)."""
        return self.termination != "quarantined"

    def point(self) -> dict:
        """The cell as a ``repro-bench-v1`` trajectory point."""
        out = asdict(self)
        for dropped in ("name", "requirement", "combination", "configuration"):
            out.pop(dropped)
        diffcheck_keys = ("models_checked", "models_degraded", "violations",
                          "counterexamples", "models_per_second", "policy_mix")
        # reduction counters only appear when a reduction actually acted, so
        # the trajectory format of unreduced runs is unchanged
        for counter in ("states_subsumed_lu", "plans_commuted", "keys_folded"):
            if not out[counter]:
                out.pop(counter)
        # shard counters only appear for sharded cells, so the trajectory
        # format of scalar runs is unchanged
        for counter in ("shard_workers", "shard_handoffs", "shard_steals"):
            if not out[counter]:
                out.pop(counter)
        if not self.witnesses_attempted:
            out.pop("witnesses_attempted")
            out.pop("witnesses_validated")
        if not self.witness_problems:
            out.pop("witness_problems")
        else:
            out["witness_problems"] = list(self.witness_problems)
        # supervision fields only appear when the supervisor had to act, so
        # the trajectory format of a clean run is unchanged
        if self.attempts == 1:
            out.pop("attempts")
        if not self.failure:
            out.pop("failure")
        for bound in ("degraded_lower_ticks", "degraded_lower_ms",
                      "degraded_upper_ticks", "degraded_upper_ms"):
            if out[bound] is None:
                out.pop(bound)
        # guided fields only appear on guided cells, so the trajectory
        # format of unguided runs is unchanged
        if not self.guided:
            out.pop("guided")
            out.pop("analytic_upper_ticks")
        if self.kind == "diffcheck":
            # WCRT-specific fields (and the per-exploration counters the
            # campaign does not aggregate) carry no signal for a fuzzing window
            for dropped in ("wcrt_ticks", "wcrt_ms", "is_lower_bound", "satisfied",
                            "states_stored", "transitions", "inclusions"):
                out.pop(dropped)
            out["counterexamples"] = list(self.counterexamples)
            out["models_per_second"] = round(self.models_per_second, 2)
            out["policy_mix"] = dict(self.policy_mix)
        else:
            for dropped in ("kind", *diffcheck_keys):
                out.pop(dropped)
        out["states_per_second"] = round(self.states_per_second, 1)
        out["explore_seconds"] = round(self.explore_seconds, 4)
        out["wall_seconds"] = round(self.wall_seconds, 4)
        return out


#: per-process cache of architecture models, keyed by factory dotted path
_MODEL_CACHE: dict[str, object] = {}


def _resolve_factory(path: str) -> Callable:
    module_name, _, attribute = path.rpartition(".")
    if not module_name:
        raise AnalysisError(f"model factory {path!r} is not a dotted path")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attribute)
    except AttributeError as exc:
        raise AnalysisError(f"model factory {path!r} not found") from exc


def _worker_model(path: str):
    model = _MODEL_CACHE.get(path)
    if model is None:
        model = _resolve_factory(path)()
        _MODEL_CACHE[path] = model
    return model


def _worker_init() -> None:
    """Initialise a sweep worker: private pool, empty kernel caches.

    Under ``spawn`` this is a cheap no-op (the fresh interpreter starts
    empty); under ``fork`` it re-establishes the invariants of the inherited
    module state, complementing the ``os.register_at_fork`` hooks for pool
    implementations spawned through other entry points.
    """
    from repro.core.dbm import reset_process_caches
    from repro.core.zonepool import reset_global_pool

    reset_global_pool()
    reset_process_caches()
    _MODEL_CACHE.clear()


def _run_diffcheck_cell(cell: DiffCheckCell, attempt: int = 1) -> CellResult:
    """Run one differential-fuzzing seed window in the current process."""
    # imported lazily: table sweeps must not pay for (or depend on) diffcheck
    from repro.diffcheck.campaign import CampaignConfig, run_campaign

    started = time.perf_counter()
    campaign = run_campaign(
        cell.seed_start, cell.count, CampaignConfig.from_dict(dict(cell.config))
    )
    wall = time.perf_counter() - started
    return CellResult(
        name=cell.name,
        requirement="R0",
        combination=None,
        configuration=None,
        wcrt_ticks=None,
        wcrt_ms=None,
        is_lower_bound=False,
        satisfied=None,
        states_explored=campaign.total_ta_states,
        states_stored=0,
        transitions=0,
        inclusions=0,
        explore_seconds=campaign.wall_seconds,
        states_per_second=campaign.states_per_second,
        termination="violations" if campaign.violations else "ok",
        wall_seconds=wall,
        worker_pid=os.getpid(),
        kind="diffcheck",
        models_checked=campaign.models_checked,
        models_degraded=campaign.degraded,
        violations=campaign.violations,
        counterexamples=tuple(campaign.counterexamples),
        models_per_second=campaign.models_per_second,
        policy_mix=tuple(sorted(campaign.policy_mix.items())),
        witnesses_attempted=campaign.witnesses_attempted,
        witnesses_validated=campaign.witnesses_validated,
        attempts=attempt,
    )


def cell_model(cell: SweepCell):
    """Build (or fetch from the worker cache) the cell's configured model."""
    model = _worker_model(cell.model_factory)
    if cell.combination is not None:
        model = configure(
            model, cell.combination, cell.configuration, policy=cell.policy or "fp"
        )
    elif cell.policy is not None:
        model = apply_policy_variant(model, cell.policy)
    return model


def run_cell(cell: "SweepCell | DiffCheckCell", *, index: int = 0,
             attempt: int = 1, deadline: float | None = None) -> CellResult:
    """Run one cell in the current process and return its flat result.

    *index*/*attempt* identify the dispatch for the fault-injection hooks
    (:mod:`repro.sweep.faults`); *deadline* is an absolute
    ``time.perf_counter`` instant propagated into the engines' cooperative
    deadline checks (the serial complement of the supervisor's hard kill).
    """
    maybe_inject(cell.name, index, attempt, stage="worker")
    runner = getattr(cell, "run_in_worker", None)
    if runner is not None:
        # duck-typed dispatch: the analysis service ships its jobs through
        # the same supervised-worker protocol as sweep cells (and past the
        # same fault hook above, so chaos plans can target them by name)
        return runner(index=index, attempt=attempt, deadline=deadline)
    if isinstance(cell, DiffCheckCell):
        # a diffcheck window budgets itself per model (OracleConfig
        # max_seconds); the hard per-cell deadline is the supervisor's job
        return _run_diffcheck_cell(cell, attempt)
    started = time.perf_counter()
    model = cell_model(cell)
    settings = TimedAutomataSettings(**dict(cell.settings))
    if deadline is not None:
        settings.deadline = deadline
    if cell.witness is not None and not settings.record_traces:
        settings.record_traces = True
    analytic_upper_ticks: int | None = None
    if cell.guided:
        # clamp the exact exploration with the cheap engines' bounds (same
        # WCRT, fewer states -- docs/portfolio.md); the DES lower bound is
        # only worth its runs when the binary search can consume it
        from repro.portfolio.bounds import analytic_upper_bounds, des_lower_bound, tightest
        from repro.portfolio.guided import guided_settings

        analytic, _notes = analytic_upper_bounds(model, cell.requirement)
        upper = tightest(analytic, "upper")
        lower = None
        if settings.method in ("binary", "binary-search"):
            lower, _des_notes = des_lower_bound(
                model, cell.requirement, runs=2, max_seconds=5.0, deadline=deadline
            )
        settings = guided_settings(settings, upper, lower)
        analytic_upper_ticks = None if upper is None else upper.value_ticks
    analysis = analyze_wcrt(model, cell.requirement, settings)
    witnesses_attempted = witnesses_validated = 0
    witness_problems: list[str] = []
    if cell.witness is not None:
        # build + doubly validate a concrete schedule per requested strategy
        from repro.witness import STRATEGIES, build_witness, validate_witness

        strategies = STRATEGIES if cell.witness == "all" else (cell.witness,)
        for strategy in strategies:
            witnesses_attempted += 1
            remaining = (
                None if deadline is None
                else max(0.05, deadline - time.perf_counter())
            )
            try:
                run = build_witness(model, analysis, strategy,
                                    max_seconds=remaining)
            except AnalysisError as exc:
                witness_problems.append(f"{strategy}: {exc}")
                continue
            validation = validate_witness(model, run, analysis.generated)
            if validation.ok:
                witnesses_validated += 1
            else:
                witness_problems.append(f"{strategy}: {validation.describe()}")
    stats = analysis.detail.statistics
    return CellResult(
        name=cell.name,
        requirement=cell.requirement,
        combination=cell.combination,
        configuration=cell.configuration,
        wcrt_ticks=analysis.wcrt_ticks,
        wcrt_ms=analysis.wcrt_ms,
        is_lower_bound=analysis.is_lower_bound,
        satisfied=analysis.satisfied,
        states_explored=stats.states_explored,
        states_stored=stats.states_stored,
        transitions=stats.transitions,
        inclusions=stats.inclusions,
        states_subsumed_lu=stats.states_subsumed_lu,
        plans_commuted=stats.plans_commuted,
        keys_folded=stats.keys_folded,
        shard_workers=stats.shard_workers,
        shard_handoffs=stats.shard_handoffs,
        shard_steals=stats.shard_steals,
        explore_seconds=stats.elapsed_seconds,
        states_per_second=stats.states_per_second,
        termination=stats.termination,
        wall_seconds=time.perf_counter() - started,
        worker_pid=os.getpid(),
        witnesses_attempted=witnesses_attempted,
        witnesses_validated=witnesses_validated,
        witness_problems=tuple(witness_problems),
        attempts=attempt,
        guided=cell.guided,
        analytic_upper_ticks=analytic_upper_ticks,
    )


@dataclass
class SweepResult:
    """Outcome of a sweep: per-cell results plus run-level metadata."""

    results: list[CellResult]
    workers: int
    start_method: str
    wall_seconds: float
    #: cells served from a resumed checkpoint rather than recomputed
    resumed: int = 0

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def by_name(self) -> dict[str, CellResult]:
        return {result.name: result for result in self.results}

    @property
    def degraded(self) -> int:
        """Cells that fell back to analytic bounds (exact run failed)."""
        return sum(1 for result in self.results
                   if result.termination == "degraded")

    @property
    def quarantined(self) -> int:
        """Poison cells that produced no data at all."""
        return sum(1 for result in self.results
                   if result.termination == "quarantined")

    @property
    def usable_results(self) -> list[CellResult]:
        """Everything except quarantined cells (exact + degraded)."""
        return [result for result in self.results if result.usable]

    @property
    def total_states(self) -> int:
        return sum(result.states_explored for result in self.results)

    @property
    def aggregate_states_per_second(self) -> float:
        """Total states over total *exploration* seconds (work throughput)."""
        seconds = sum(result.explore_seconds for result in self.results)
        return self.total_states / seconds if seconds > 0 else 0.0

    @property
    def sweep_states_per_second(self) -> float:
        """Total states over sweep *wall* time -- the parallel speed-up view."""
        return self.total_states / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def points(self) -> dict[str, dict]:
        """The sweep as ``repro-bench-v1`` trajectory points."""
        points = {result.name: result.point() for result in self.results}
        points["sweep"] = {
            "workers": self.workers,
            "start_method": self.start_method,
            "cells": len(self.results),
            "states_explored": self.total_states,
            "states_per_second": round(self.aggregate_states_per_second, 1),
            "sweep_states_per_second": round(self.sweep_states_per_second, 1),
            "wall_seconds": round(self.wall_seconds, 4),
        }
        # supervision accounting only appears when it happened (clean runs
        # keep the exact pre-supervisor trajectory format)
        if self.degraded:
            points["sweep"]["degraded"] = self.degraded
        if self.quarantined:
            points["sweep"]["quarantined"] = self.quarantined
        if self.resumed:
            points["sweep"]["resumed"] = self.resumed
        return points

    def write(self, path: str, kind: str = "scenario_sweep",
              meta: Mapping | None = None) -> dict:
        """Write the sweep as a ``BENCH_*.json`` trajectory file."""
        return write_bench_json(path, kind, self.points(), meta=dict(meta or {}))


def run_sweep(
    cells: Sequence[SweepCell],
    workers: int | None = None,
    start_method: str = "spawn",
    initializer: Callable[[], None] | None = None,
    supervise: "SupervisorConfig | None" = None,
    checkpoint: str | None = None,
    resume: bool = False,
) -> SweepResult:
    """Fan *cells* across supervised *workers* and collect the results.

    ``workers=None`` uses ``os.cpu_count()``; ``workers=1`` (or a single
    cell) runs serially in-process.  Results arrive in cell order
    regardless of which worker finished first.

    *supervise* sets the fault-tolerance policy
    (:class:`repro.sweep.supervisor.SupervisorConfig`); the default retries
    transient worker deaths and raises a cell-attributed
    :class:`AnalysisError` on unrecoverable failures.  *checkpoint* journals
    every completed cell to a ``repro-checkpoint-v1`` JSONL file;
    ``resume=True`` additionally loads it first and skips (but returns) the
    cells already completed, making an interrupted-then-resumed sweep
    deterministically identical to an uninterrupted one.
    """
    from repro.sweep.supervisor import (
        Supervisor, SupervisorConfig, run_supervised_serial,
    )

    cells = list(cells)
    if not cells:
        raise AnalysisError("cannot run a sweep without cells")
    if resume and checkpoint is None:
        raise AnalysisError("resume=True requires a checkpoint path")
    config = supervise if supervise is not None else SupervisorConfig()
    if workers is None:
        workers = os.cpu_count() or 1
    started = time.perf_counter()
    journal = None
    completed: dict[int, CellResult] = {}
    try:
        if checkpoint is not None:
            journal = CheckpointJournal(checkpoint, [cell.name for cell in cells],
                                        resume=resume)
            completed = dict(journal.completed)
        tasks = [(index, cell) for index, cell in enumerate(cells)
                 if index not in completed]
        workers = max(1, min(int(workers), len(tasks) or 1))
        if workers == 1:
            fresh = run_supervised_serial(tasks, config, journal)
        else:
            import multiprocessing

            # per-cell dispatch: cells are coarse (seconds each) and
            # heterogeneous, dynamic dispatch beats pre-chunking
            context = multiprocessing.get_context(start_method)
            fresh = Supervisor(tasks, workers, context, config,
                               journal=journal, initializer=initializer).run()
    finally:
        if journal is not None:
            journal.close()
    merged = {**completed, **fresh}
    results = [merged[index] for index in range(len(cells))]
    wall = time.perf_counter() - started
    return SweepResult(results=results, workers=workers,
                       start_method=start_method if workers > 1 else "serial",
                       wall_seconds=wall, resumed=len(completed))


def verify_cells(
    results: Sequence[CellResult], baseline_points: Mapping[str, Mapping]
) -> list[str]:
    """Check sweep results against the machine-independent baseline anchors.

    ``baseline_points`` maps point names to dicts that may carry
    ``expected_*`` entries (:data:`repro.perf.ANCHOR_CHECKS`; the format of
    ``benchmarks/baselines/*.json``).  Returns human-readable mismatch
    lines; an empty list means every anchored cell reproduced the recorded
    exploration exactly.
    """
    problems = []
    for result in results:
        expected = baseline_points.get(result.name, {})
        problems.extend(verify_anchors(result.name, asdict(result), expected))
    return problems
