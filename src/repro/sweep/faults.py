"""Deterministic fault injection for the supervised sweep runner.

The supervisor's recovery paths (kill-on-deadline, retry-with-backoff,
degradation, quarantine) only earn their keep if they can be *proven* to
work, and real crashes are not reproducible on demand.  This module makes
them so: a :class:`FaultPlan` names, per sweep cell and per attempt, one
misbehaviour to inject inside the worker that picked the cell up --

* ``"crash"``  -- die instantly via ``os._exit`` (no cleanup, no result),
  the shape of a segfaulting native kernel or an ``abort()``;
* ``"oom"``    -- allocate a bounded amount of memory, then die with the
  kernel OOM-killer's signature exit code (137).  The balloon is bounded so
  the test box is never actually driven into swap; what matters to the
  supervisor is the abnormal exit, not the allocation itself;
* ``"hang"``   -- stop responding (sleep far past any deadline), the shape
  of a livelocked exploration; only the supervisor's hard kill ends it;
* ``"raise"``  -- raise an :class:`InjectedFault` (an ``AnalysisError``),
  the shape of a deterministic in-engine failure.

Plans are plain data (JSON) and travel to worker processes through the
``REPRO_FAULTS`` environment variable -- either the JSON text itself or
``@/path/to/plan.json`` -- so they survive the ``spawn`` start method
without any pickling support from the caller.  Each entry fires only for
its cell (by sweep index or by cell name) and only on the listed attempt
numbers, which keeps every scenario deterministic: a plan
``[{"cell": 3, "action": "crash", "attempts": [1]}]`` crashes the first
attempt of cell 3 and lets the retry succeed, while omitting ``attempts``
makes the fault fire on every attempt (a poison cell).

The hooks are zero-cost when no plan is active: :func:`active_plan` is a
cached no-op returning ``None`` unless ``REPRO_FAULTS`` is set (or a plan
was installed programmatically with :func:`install_plan`).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from repro.util.errors import AnalysisError, ModelError

__all__ = [
    "FAULT_ACTIONS",
    "FAULTS_ENV",
    "FaultSpec",
    "FaultPlan",
    "InjectedFault",
    "active_plan",
    "install_plan",
    "maybe_inject",
]

#: environment variable carrying the serialised plan into worker processes
FAULTS_ENV = "REPRO_FAULTS"

#: the supported misbehaviours
FAULT_ACTIONS = ("crash", "oom", "hang", "raise")

#: exit code of the ``"crash"`` action (distinctive, not a signal number)
CRASH_EXIT_CODE = 42

#: exit code of the ``"oom"`` action (what the kernel OOM killer produces)
OOM_EXIT_CODE = 137


class InjectedFault(AnalysisError):
    """The deterministic failure raised by the ``"raise"`` action."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned misbehaviour, targeted at a cell and attempt window."""

    #: sweep index (int) or cell name (str) the fault targets
    cell: int | str
    #: one of :data:`FAULT_ACTIONS`
    action: str
    #: attempt numbers (1-based) on which the fault fires; None = every attempt
    attempts: tuple[int, ...] | None = None
    #: pipeline stage the fault targets: ``"worker"`` (inside the worker's
    #: ``run_cell``), ``"degraded"`` (inside the supervisor's analytic
    #: fallback) -- the latter is how a test builds a truly poison cell whose
    #: degradation also fails -- or ``"shard"`` (inside a forked shard of the
    #: sharded exploration engine, keyed ``shard/<rank>``)
    stage: str = "worker"
    #: ``"oom"`` only: megabytes to allocate before dying
    megabytes: int = 64
    #: ``"hang"`` only: safety cap on the sleep, far past any sane deadline
    hang_seconds: float = 600.0

    def __post_init__(self):
        if self.action not in FAULT_ACTIONS:
            raise ModelError(
                f"unknown fault action {self.action!r} (expected one of {FAULT_ACTIONS})"
            )
        if self.stage not in ("worker", "degraded", "shard"):
            raise ModelError(
                f"unknown fault stage {self.stage!r} "
                "(expected 'worker', 'degraded' or 'shard')"
            )

    def matches(self, name: str, index: int, attempt: int, stage: str) -> bool:
        if self.stage != stage:
            return False
        if isinstance(self.cell, int):
            if self.cell != index:
                return False
        elif self.cell != name:
            return False
        return self.attempts is None or attempt in self.attempts

    def to_dict(self) -> dict:
        out: dict = {"cell": self.cell, "action": self.action, "stage": self.stage}
        if self.attempts is not None:
            out["attempts"] = list(self.attempts)
        if self.action == "oom":
            out["megabytes"] = self.megabytes
        if self.action == "hang":
            out["hang_seconds"] = self.hang_seconds
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        if "cell" not in data or "action" not in data:
            raise ModelError(f"fault spec needs 'cell' and 'action': {data!r}")
        attempts = data.get("attempts")
        return cls(
            cell=data["cell"],
            action=str(data["action"]),
            attempts=tuple(int(a) for a in attempts) if attempts is not None else None,
            stage=str(data.get("stage", "worker")),
            megabytes=int(data.get("megabytes", 64)),
            hang_seconds=float(data.get("hang_seconds", 600.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of planned faults (plain data, JSON round-trip)."""

    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def find(self, name: str, index: int, attempt: int, stage: str) -> FaultSpec | None:
        for spec in self.specs:
            if spec.matches(name, index, attempt, stage):
                return spec
        return None

    def to_json(self) -> str:
        return json.dumps([spec.to_dict() for spec in self.specs])

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ModelError(f"unparseable fault plan: {exc}") from exc
        if not isinstance(data, list):
            raise ModelError("a fault plan must be a JSON list of fault specs")
        return cls(specs=tuple(FaultSpec.from_dict(entry) for entry in data))

    def install(self) -> None:
        """Publish the plan to this process *and* future worker processes."""
        install_plan(self)


#: programmatically installed plan (overrides the environment in-process)
_installed: FaultPlan | None = None


def install_plan(plan: "FaultPlan | None") -> None:
    """Install *plan* for this process and export it to child processes.

    ``install_plan(None)`` clears both the in-process plan and the
    environment variable.
    """
    global _installed
    _installed = plan
    if plan is None or not plan:
        os.environ.pop(FAULTS_ENV, None)
    else:
        os.environ[FAULTS_ENV] = plan.to_json()


def active_plan() -> FaultPlan | None:
    """The currently active plan, or None (the common, zero-cost case)."""
    if _installed is not None:
        return _installed or None
    text = os.environ.get(FAULTS_ENV)
    if not text:
        return None
    if text.startswith("@"):
        with open(text[1:], "r", encoding="utf-8") as handle:
            text = handle.read()
    return FaultPlan.from_json(text) or None


def _execute(spec: FaultSpec, name: str) -> None:
    if spec.action == "crash":
        os._exit(CRASH_EXIT_CODE)
    if spec.action == "oom":
        # a *bounded* balloon: the point is the abnormal exit code the
        # supervisor sees, not actually exhausting the machine
        balloon = [bytearray(1024 * 1024) for _ in range(max(1, spec.megabytes))]
        del balloon
        os._exit(OOM_EXIT_CODE)
    if spec.action == "hang":
        deadline = time.monotonic() + spec.hang_seconds
        while time.monotonic() < deadline:  # pragma: no branch - killed mid-sleep
            time.sleep(0.05)
        return  # pragma: no cover - only reached if nobody killed us
    raise InjectedFault(f"injected fault in cell {name!r}")


def maybe_inject(name: str, index: int, attempt: int, stage: str = "worker") -> None:
    """Fire the planned fault for (*name*/*index*, *attempt*, *stage*), if any.

    Called by :func:`repro.sweep.runner.run_cell` (stage ``"worker"``) and by
    the supervisor's analytic fallback (stage ``"degraded"``).  A no-op
    unless a plan is active and one of its specs matches.
    """
    plan = active_plan()
    if plan is None:
        return
    spec = plan.find(name, index, attempt, stage)
    if spec is not None:
        _execute(spec, name)
