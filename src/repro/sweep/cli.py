"""``repro-sweep`` -- the command-line scenario-sweep runner.

Fans the paper's table cells (or a user-defined grid) across worker
processes and writes a ``repro-bench-v1`` trajectory::

    repro-sweep --grid core --workers 4                 # the 3 scaling cells
    repro-sweep --grid table1 --output BENCH_table1.json
    repro-sweep --grid table2 --workers 2 --start-method fork
    repro-sweep --grid policies                         # round-robin / TDMA-bus variants
    repro-sweep --combination AL+TMC --configuration pno sp --requirement TMC
    repro-sweep --combination AL+TMC --configuration pno --policy rr tdma-bus

``--check`` cross-validates the sweep against a committed baseline's
machine-independent anchors (exact WCRT ticks and state counts) and exits
non-zero on any mismatch -- a parallel run that explores a different state
space is a bug, not a speed-up.  Without an installed package the module
also runs as ``PYTHONPATH=src python -m repro.sweep.cli``.

Execution is supervised (``docs/robustness.md``): crashed workers are
respawned and retried (``--max-attempts``), overrunning cells are killed at
``--deadline-seconds``, and unrecoverable cells degrade to analytic bounds
or are quarantined rather than sinking the sweep (``--on-error degrade``,
the CLI default).  ``--checkpoint FILE`` journals every completed cell;
``--resume`` continues an interrupted sweep from that journal::

    repro-sweep --grid table2 --checkpoint table2.checkpoint.jsonl
    repro-sweep --grid table2 --checkpoint table2.checkpoint.jsonl --resume
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro.core.reductions import ReductionConfig
from repro.perf import load_baseline_json
from repro.sweep.cells import (
    core_scaling_cells,
    grid_cells,
    policy_variant_cells,
    table1_cells,
    table2_cells,
)
from repro.sweep.runner import run_sweep, verify_cells
from repro.sweep.supervisor import SupervisorConfig
from repro.util.errors import AnalysisError, ModelError

__all__ = ["main"]


def _custom_grid(args) -> bool:
    return bool(args.combination or args.configuration or args.requirement or args.policy)


def _build_cells(args) -> list:
    if _custom_grid(args):
        return grid_cells(
            combinations=args.combination or None,
            configurations=args.configuration or None,
            requirements=args.requirement or None,
            settings={"max_states": args.max_states} if args.max_states is not None else None,
            policies=args.policy or None,
        )
    if args.grid == "core":
        return core_scaling_cells()
    if args.grid == "table1":
        return table1_cells(full_scale=args.full_scale)
    if args.grid == "policies":
        return policy_variant_cells(full_scale=args.full_scale)
    return table2_cells(full_scale=args.full_scale)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-sweep", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--grid", choices=("core", "table1", "table2", "policies"),
                        default="core",
                        help="predefined cell grid (default: core scaling cells)")
    parser.add_argument("--combination", action="append", metavar="NAME",
                        help="restrict a custom grid to this scenario combination "
                             "(repeatable; overrides --grid)")
    parser.add_argument("--configuration", nargs="*", default=None, metavar="KIND",
                        help="event configurations of a custom grid (po pno sp pj bur)")
    parser.add_argument("--requirement", nargs="*", default=None, metavar="NAME",
                        help="requirements of a custom grid")
    parser.add_argument("--policy", nargs="*", default=None, metavar="VARIANT",
                        help="resource-policy variants of a custom grid (fp rr tdma-bus)")
    parser.add_argument("--max-states", type=int, default=None,
                        help="state budget applied to every custom-grid cell")
    parser.add_argument("--full-scale", action="store_true",
                        help="drop the default budgets of the tractable table cells")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: all cores; 1 = serial)")
    parser.add_argument("--start-method", choices=("spawn", "fork", "forkserver"),
                        default="spawn", help="multiprocessing start method")
    parser.add_argument("--output", default="BENCH_sweep.json",
                        help="trajectory output path (default BENCH_sweep.json)")
    parser.add_argument("--baseline", default=None,
                        help="baseline trajectory with expected_* anchors for --check")
    parser.add_argument("--check", action="store_true",
                        help="fail on any mismatch against the baseline anchors")
    parser.add_argument("--witness", choices=("earliest", "latest", "midpoint", "all"),
                        default=None,
                        help="build + validate a concrete witness schedule per cell "
                             "(TA step-check + DES replay; forces trace recording); "
                             "fails the sweep when a witness does not validate")
    parser.add_argument("--guided", action="store_true",
                        help="run every cell bound-guided: SymTA/MPA clamp the "
                             "observer ceiling (and DES seeds the binary search) "
                             "before the exact exploration -- identical WCRTs, "
                             "fewer states (docs/portfolio.md)")
    parser.add_argument("--shard-workers", type=int, default=None, metavar="N",
                        help="fork N shard workers inside every cell's exact "
                             "exploration (0/1 = scalar engine); verdicts, "
                             "statistics and witnesses are bit-identical to "
                             "the scalar engine (docs/performance.md)")
    parser.add_argument("--reductions", default=None, metavar="SPEC",
                        help="state-space reductions applied to every cell: 'all', "
                             "'none' or a comma list of lu_extrapolation, "
                             "partial_order, symmetry -- identical WCRTs, fewer "
                             "states (docs/reductions.md); default: the cells' "
                             "own settings")
    supervision = parser.add_argument_group("supervision (docs/robustness.md)")
    supervision.add_argument("--deadline-seconds", type=float, default=None,
                             metavar="S",
                             help="hard wall-clock deadline per cell; overrunning "
                                  "workers are killed (serial runs enforce it "
                                  "cooperatively)")
    supervision.add_argument("--max-attempts", type=int, default=3, metavar="N",
                             help="attempts per cell for transient worker deaths "
                                  "(default 3)")
    supervision.add_argument("--on-error", choices=("raise", "degrade"),
                             default="degrade",
                             help="unrecoverable cells: abort the sweep ('raise') or "
                                  "fall back to SymTA/MPA+DES bounds and quarantine "
                                  "poison cells ('degrade', default)")
    supervision.add_argument("--checkpoint", default=None, metavar="FILE",
                             help="journal completed cells to this "
                                  "repro-checkpoint-v1 JSONL file")
    supervision.add_argument("--resume", action="store_true",
                             help="skip cells already completed in --checkpoint "
                                  "(their journaled results are merged back in)")
    supervision.add_argument("--min-usable", type=int, default=None, metavar="N",
                             help="fail (exit 1) when fewer than N cells end up "
                                  "usable (exact or degraded)")
    args = parser.parse_args(argv)
    custom_grid = _custom_grid(args)
    if args.max_states is not None and not custom_grid:
        parser.error("--max-states only applies to custom grids "
                     "(--combination/--configuration/--requirement); the "
                     "predefined --grid cells carry their own budgets")
    if args.workers is not None and args.workers < 1:
        parser.error("--workers must be at least 1 (1 = serial)")
    if args.resume and not args.checkpoint:
        parser.error("--resume needs --checkpoint")
    if args.max_attempts < 1:
        parser.error("--max-attempts must be at least 1")
    if args.shard_workers is not None and args.shard_workers < 0:
        parser.error("--shard-workers must be non-negative")
    # fail before the (potentially multi-minute) sweep runs
    if args.check and not args.baseline:
        print("--check needs --baseline", file=sys.stderr)
        return 2
    if args.baseline is not None:
        try:
            baseline = load_baseline_json(args.baseline)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
    else:
        baseline = None

    try:
        cells = _build_cells(args)
        if args.witness is not None:
            cells = [replace(cell, witness=args.witness) for cell in cells]
        if args.guided:
            cells = [replace(cell, guided=True) for cell in cells]
        if args.reductions is not None:
            # validate once here (a typo must fail fast, not in a worker) and
            # override whatever the grid's cells carry
            spec = ReductionConfig.parse(args.reductions).spec()
            cells = [
                replace(cell, settings={**dict(cell.settings), "reductions": spec})
                for cell in cells
            ]
        if args.shard_workers is not None:
            cells = [
                replace(cell, settings={**dict(cell.settings),
                                        "shard_workers": args.shard_workers})
                for cell in cells
            ]
    except ModelError as exc:
        print(f"invalid cell specification: {exc}", file=sys.stderr)
        return 2
    config = SupervisorConfig(
        deadline_seconds=args.deadline_seconds,
        max_attempts=args.max_attempts,
        on_error=args.on_error,
    )
    print(f"sweeping {len(cells)} cells "
          f"(workers={args.workers or 'auto'}, start_method={args.start_method})")
    try:
        sweep = run_sweep(cells, workers=args.workers,
                          start_method=args.start_method, supervise=config,
                          checkpoint=args.checkpoint, resume=args.resume)
    except AnalysisError as exc:
        print(f"SWEEP FAILED: {exc}", file=sys.stderr)
        if args.checkpoint:
            print(f"completed cells are journaled in {args.checkpoint}; "
                  f"re-run with --resume to continue", file=sys.stderr)
        return 1

    for result in sweep:
        if not result.usable:
            print(f"  {result.name:24s} QUARANTINED after {result.attempts} "
                  f"attempt(s): {result.failure}")
            continue
        if result.termination == "degraded":
            lower = "?" if result.degraded_lower_ms is None else f"{result.degraded_lower_ms:.3f}"
            upper = "?" if result.degraded_upper_ms is None else f"{result.degraded_upper_ms:.3f}"
            print(f"  {result.name:24s} DEGRADED wcrt in [{lower}, {upper}] ms  "
                  f"({result.failure})")
            continue
        prefix = ">" if result.is_lower_bound else "="
        wcrt = "?" if result.wcrt_ms is None else f"{result.wcrt_ms:.3f}"
        witness_note = ""
        if result.witnesses_attempted:
            witness_note = (
                f"  witness {result.witnesses_validated}"
                f"/{result.witnesses_attempted}"
            )
        print(f"  {result.name:24s} wcrt {prefix} {wcrt:>10s} ms  "
              f"{result.states_explored:7d} states  "
              f"{result.states_per_second:9.1f} states/s  "
              f"[pid {result.worker_pid}]{witness_note}")
    print(f"  {'sweep total':24s} {sweep.total_states} states in "
          f"{sweep.wall_seconds:.2f}s wall "
          f"({sweep.sweep_states_per_second:.1f} states/s across "
          f"{sweep.workers} worker{'s' if sweep.workers != 1 else ''})")
    if sweep.resumed:
        print(f"  resumed: {sweep.resumed} cell(s) served from {args.checkpoint}")
    if sweep.degraded or sweep.quarantined:
        print(f"  supervision: {sweep.degraded} degraded, "
              f"{sweep.quarantined} quarantined, "
              f"{len(sweep.usable_results)}/{len(sweep)} usable")

    sweep.write(args.output, meta={
        "grid": "custom" if custom_grid else args.grid,
        "cells": [cell.name for cell in cells],
    })
    print(f"wrote {args.output}")

    if args.witness is not None:
        missing = [
            result for result in sweep
            if result.witnesses_validated < result.witnesses_attempted
        ]
        if missing:
            print("WITNESS VALIDATION FAILED:")
            for result in missing:
                for problem in result.witness_problems:
                    print(f"  {result.name}: {problem}")
            return 1
        print("--witness ok: every built schedule passed the TA step-check "
              "and the DES replay")

    if args.check:
        problems = verify_cells(sweep.results, baseline["points"])
        if problems:
            print("SWEEP MISMATCH against the baseline anchors:")
            for line in problems:
                print(f"  {line}")
            return 1
        print("--check ok: every anchored cell reproduced the baseline exactly")

    if args.min_usable is not None and len(sweep.usable_results) < args.min_usable:
        print(f"TOO FEW USABLE CELLS: {len(sweep.usable_results)} < "
              f"{args.min_usable} required", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
