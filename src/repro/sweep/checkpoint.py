"""The ``repro-checkpoint-v1`` journal: crash-safe sweep progress on disk.

A campaign over many cells must survive interruption -- SIGINT, a machine
reboot, an OOM-killed parent -- without losing the hours of work already
done.  The journal is an append-only JSONL file:

* line 1 is a header naming the schema, the number of cells and a
  *fingerprint* of the cell list (order-sensitive hash of the cell names),
  so a checkpoint can never be resumed against a different sweep;
* every further line records one completed cell as
  ``{"index": i, "name": ..., "result": {...}}`` where ``result`` is the
  flat :class:`~repro.sweep.runner.CellResult` dict.

Each record is flushed *and fsynced* before the supervisor moves on, so the
journal never claims more work than actually reached the disk; a torn final
line (the process died mid-write) is detected and ignored on load.  Resume
is a pure merge: completed indices are served from the journal verbatim and
the remaining cells run normally, which makes a resumed
:class:`~repro.sweep.runner.SweepResult` deterministic-field identical to
an uninterrupted run.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from typing import IO, Sequence

from repro.util.errors import AnalysisError

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointJournal",
    "load_checkpoint",
    "sweep_fingerprint",
]

CHECKPOINT_SCHEMA = "repro-checkpoint-v1"


def sweep_fingerprint(cell_names: Sequence[str]) -> str:
    """Order-sensitive fingerprint of a sweep's cell list."""
    digest = hashlib.sha256(json.dumps(list(cell_names)).encode("utf-8"))
    return digest.hexdigest()[:16]


def _result_to_dict(result) -> dict:
    return asdict(result)


def _result_from_dict(data: dict):
    """Rebuild a CellResult from its JSON form (lists back to tuples)."""
    # imported here: runner imports this module, not the other way around
    from repro.sweep.runner import CellResult

    payload = dict(data)
    for key in ("counterexamples", "witness_problems"):
        if key in payload:
            payload[key] = tuple(payload[key])
    if "policy_mix" in payload:
        payload["policy_mix"] = tuple(
            (str(name), int(count)) for name, count in payload["policy_mix"]
        )
    return CellResult(**payload)


def load_checkpoint(path: str, cell_names: Sequence[str]) -> dict[int, object]:
    """Load completed results from *path*, validated against *cell_names*.

    Returns ``{cell index: CellResult}``.  A missing file is an empty
    checkpoint (nothing completed yet); a file written for a different cell
    list raises: silently mixing two sweeps' results would be corruption,
    not resumption.  A torn trailing line (interrupt mid-write) is ignored;
    torn *earlier* lines cannot happen (each record is fsynced before the
    next begins) and raise.
    """
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if not lines:
        return {}
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"unusable checkpoint {path}: bad header ({exc})") from exc
    if header.get("schema") != CHECKPOINT_SCHEMA:
        raise AnalysisError(
            f"unusable checkpoint {path}: schema {header.get('schema')!r} "
            f"(expected {CHECKPOINT_SCHEMA!r})"
        )
    fingerprint = sweep_fingerprint(cell_names)
    if header.get("fingerprint") != fingerprint:
        raise AnalysisError(
            f"checkpoint {path} was written for a different sweep "
            f"(fingerprint {header.get('fingerprint')!r} != {fingerprint!r}); "
            "refusing to merge results across sweeps"
        )
    completed: dict[int, object] = {}
    for position, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if position == len(lines):
                # torn final line: the process died mid-append; the cell
                # never completed as far as the journal is concerned
                break
            raise AnalysisError(
                f"unusable checkpoint {path}: corrupt record on line {position} ({exc})"
            ) from exc
        index = int(record["index"])
        if not 0 <= index < len(cell_names):
            raise AnalysisError(
                f"unusable checkpoint {path}: cell index {index} out of range"
            )
        if record.get("name") != cell_names[index]:
            raise AnalysisError(
                f"unusable checkpoint {path}: record {index} names "
                f"{record.get('name')!r}, sweep has {cell_names[index]!r}"
            )
        completed[index] = _result_from_dict(record["result"])
    return completed


class CheckpointJournal:
    """Append-only, fsync-per-record journal of completed sweep cells."""

    def __init__(self, path: str, cell_names: Sequence[str], resume: bool = False):
        self.path = path
        self.cell_names = list(cell_names)
        self.completed: dict[int, object] = {}
        self._handle: IO[str] | None = None
        if resume:
            self.completed = load_checkpoint(path, self.cell_names)
        fresh = not resume or not os.path.exists(path)
        # line-buffered append; a fresh journal truncates any stale file
        self._handle = open(path, "w" if fresh else "a", encoding="utf-8")
        if fresh:
            self._write_line(json.dumps({
                "schema": CHECKPOINT_SCHEMA,
                "fingerprint": sweep_fingerprint(self.cell_names),
                "cells": len(self.cell_names),
            }))

    def _write_line(self, line: str) -> None:
        handle = self._handle
        assert handle is not None
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())

    def record(self, index: int, result) -> None:
        """Journal one completed cell (flushed and fsynced before returning)."""
        self.completed[index] = result
        self._write_line(json.dumps({
            "index": index,
            "name": result.name,
            "result": _result_to_dict(result),
        }))

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
