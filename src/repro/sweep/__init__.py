"""Parallel scenario sweeps: the paper's tables as a fan-out workload.

The paper's headline result is a *table* of analyses -- many (architecture,
event-model, requirement) cells checked one after another.  The cells are
independent, so this package runs them as a multiprocess sweep:

* :mod:`repro.sweep.cells` -- picklable cell descriptions and grid builders
  (Table 1, Table 2, the core-scaling cells, user-defined grids),
* :mod:`repro.sweep.runner` -- the spawn-safe worker pool, flat results and
  ``repro-bench-v1`` trajectory aggregation,
* :mod:`repro.sweep.supervisor` -- crash isolation, hard deadlines, retry
  with backoff, degradation to analytic bounds and quarantine,
* :mod:`repro.sweep.checkpoint` -- the ``repro-checkpoint-v1`` journal
  behind ``--resume``,
* :mod:`repro.sweep.faults` -- the deterministic fault-injection harness,
* :mod:`repro.sweep.cli` -- the ``repro-sweep`` console entry point.

See ``docs/performance.md`` ("Batched frontier & parallel sweeps") for the
workflow and the safety notes on per-worker zone pools, and
``docs/robustness.md`` for the supervision model.
"""

from repro.sweep.cells import (
    DEFAULT_MODEL_FACTORY,
    DiffCheckCell,
    SweepCell,
    core_scaling_cells,
    diffcheck_cells,
    grid_cells,
    policy_variant_cells,
    table1_cells,
    table2_cells,
)
from repro.sweep.checkpoint import CheckpointJournal, load_checkpoint
from repro.sweep.faults import FaultPlan, FaultSpec, install_plan
from repro.sweep.runner import (
    CellResult,
    SweepResult,
    run_cell,
    run_sweep,
    verify_cells,
)
from repro.sweep.supervisor import SupervisorConfig

__all__ = [
    "DEFAULT_MODEL_FACTORY",
    "SweepCell",
    "DiffCheckCell",
    "CellResult",
    "SweepResult",
    "SupervisorConfig",
    "CheckpointJournal",
    "FaultPlan",
    "FaultSpec",
    "install_plan",
    "load_checkpoint",
    "core_scaling_cells",
    "table1_cells",
    "table2_cells",
    "policy_variant_cells",
    "grid_cells",
    "diffcheck_cells",
    "run_cell",
    "run_sweep",
    "verify_cells",
]
