"""Supervised worker pools: crash-isolated, deadline-enforced cell dispatch.

``multiprocessing.Pool.map`` is the wrong tool for campaigns over hostile
work: one worker that segfaults, gets OOM-killed or livelocks takes the
whole sweep down (or hangs it forever), and everything already computed is
lost.  This module replaces it with an explicit supervisor:

* **Crash isolation.**  Each cell is dispatched to one worker process over
  a private pipe.  A worker that dies abnormally (signal, ``os._exit``,
  OOM-killer) loses *that cell's attempt*, nothing else; the supervisor
  respawns a fresh worker and carries on.
* **Hard deadlines.**  ``SupervisorConfig.deadline_seconds`` is wall-clock
  per attempt, enforced from the *outside*: an overrunning worker is
  SIGKILLed and replaced.  This is the non-cooperative complement to the
  engines' own ``max_seconds`` budgets -- a worker stuck in native code or
  a pathological allocation never checks a cooperative budget.
* **Bounded retry with exponential backoff.**  Abnormal exits are treated
  as transient (a crashed machine neighbour, a fork bomb next door, an
  OOM pass) and retried up to ``max_attempts`` times, waiting
  ``backoff_seconds * backoff_factor**(attempt-1)`` between attempts.
  In-worker *exceptions* are deterministic and are not retried.
* **Graceful degradation.**  With ``on_error="degrade"``, a cell whose
  exact TA exploration died, hung or kept crashing still yields a usable
  :class:`~repro.sweep.runner.CellResult`: the supervisor computes the
  SymTA/MPA analytic *upper* bounds and a budgeted DES *lower* bound in
  the parent process and returns them with ``termination="degraded"``.
* **Quarantine.**  A poison cell -- one whose degraded fallback fails too
  -- is recorded with ``termination="quarantined"`` instead of poisoning
  the campaign, and the sweep completes without it.

With ``on_error="raise"`` (the library default) unrecoverable failures
raise an :class:`~repro.util.errors.AnalysisError` that *names the cell*
(name, kind, seed) instead of the bare worker traceback ``Pool.map`` used
to propagate.

Every completed cell is journaled through the ``repro-checkpoint-v1``
writer (:mod:`repro.sweep.checkpoint`) before the next dispatch, so a
SIGINT/reboot mid-campaign costs at most the cells in flight.
"""

from __future__ import annotations

import heapq
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.sweep.cells import DiffCheckCell
from repro.sweep.faults import maybe_inject
from repro.util.errors import AnalysisError, ModelError, ReproError

__all__ = [
    "SupervisorConfig",
    "Supervisor",
    "cell_attribution",
    "degraded_cell_result",
    "degraded_interval",
    "discard_worker",
    "quarantined_cell_result",
    "run_supervised_serial",
    "spawn_worker",
]


@dataclass(frozen=True)
class SupervisorConfig:
    """Fault-tolerance policy of one supervised sweep."""

    #: hard wall-clock limit per attempt (multiprocess: the worker is
    #: SIGKILLed on overrun; serial: enforced cooperatively through the
    #: engines' deadline hooks); None = unlimited
    deadline_seconds: float | None = None
    #: attempts per cell for *transient* failures (abnormal worker exits)
    max_attempts: int = 3
    #: base and factor of the exponential retry backoff
    backoff_seconds: float = 0.5
    backoff_factor: float = 2.0
    backoff_max_seconds: float = 10.0
    #: what to do when a cell is unrecoverable: "raise" (AnalysisError naming
    #: the cell) or "degrade" (analytic-bounds fallback, then quarantine)
    on_error: str = "raise"
    #: budgets of the degraded DES lower-bound fallback
    degraded_des_runs: int = 2
    degraded_des_seconds: float = 5.0
    degraded_des_horizon_periods: int = 50

    def __post_init__(self):
        if self.on_error not in ("raise", "degrade"):
            raise ModelError(
                f"unknown on_error policy {self.on_error!r} (expected 'raise' or 'degrade')"
            )
        if self.max_attempts < 1:
            raise ModelError("max_attempts must be at least 1")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ModelError("deadline_seconds must be positive")

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before retry number *attempt* (attempt 2 = first)."""
        delay = self.backoff_seconds * self.backoff_factor ** max(0, attempt - 2)
        return min(delay, self.backoff_max_seconds)


def cell_attribution(cell, index: int) -> str:
    """Human-readable identity of a cell for error messages and logs."""
    if isinstance(cell, DiffCheckCell):
        return (
            f"cell #{index} {cell.name!r} (kind=diffcheck, "
            f"seed_start={cell.seed_start}, count={cell.count})"
        )
    seed = cell.settings.get("seed", 0) if cell.settings else 0
    return f"cell #{index} {cell.name!r} (kind=wcrt, seed={seed})"


def quarantined_cell_result(cell, index: int, reason: str, attempts: int):
    """The tombstone of a poison cell: no data, the failure on record."""
    from repro.sweep.runner import CellResult

    diffcheck = isinstance(cell, DiffCheckCell)
    return CellResult(
        name=cell.name,
        requirement="R0" if diffcheck else cell.requirement,
        combination=None if diffcheck else cell.combination,
        configuration=None if diffcheck else cell.configuration,
        wcrt_ticks=None,
        wcrt_ms=None,
        is_lower_bound=False,
        satisfied=None,
        states_explored=0,
        states_stored=0,
        transitions=0,
        inclusions=0,
        explore_seconds=0.0,
        states_per_second=0.0,
        termination="quarantined",
        wall_seconds=0.0,
        worker_pid=os.getpid(),
        kind="diffcheck" if diffcheck else "wcrt",
        attempts=attempts,
        failure=reason,
    )


def degraded_interval(model, requirement_name: str, config: SupervisorConfig):
    """What the robust engines can still say about *requirement_name*.

    Computes the tightest SymTA/MPA busy-window/curve *upper* bound and a
    budgeted DES *lower* bound on the requirement's WCRT, entirely in the
    calling process: the fallback engines are analytic (SymTA/MPA) or
    cooperatively budgeted (DES ``max_seconds``), so they cannot wedge the
    caller the way an exact exploration can wedge a worker.  Returns
    ``(lower, upper, satisfied)`` in model ticks; raises
    :class:`AnalysisError` when no engine produces a bound.

    Shared by :func:`degraded_cell_result` and the analysis service's
    per-request degradation (:mod:`repro.serve`).  The bounds themselves
    come from :mod:`repro.portfolio.bounds` — the degraded interval is
    exactly the zero-budget floor of the anytime portfolio
    (:func:`repro.portfolio.anytime.analyze` with ``max_states=0``).
    """
    from repro.portfolio.bounds import analytic_upper_bounds, des_lower_bound, tightest

    requirement = model.requirement(requirement_name)

    analytic, notes = analytic_upper_bounds(model, requirement_name)
    upper_bound = tightest(analytic, "upper")
    upper = None if upper_bound is None else upper_bound.value_ticks

    lower_bound, des_notes = des_lower_bound(
        model, requirement_name,
        runs=config.degraded_des_runs,
        horizon_periods=config.degraded_des_horizon_periods,
        max_seconds=config.degraded_des_seconds,
        seed=1,
    )
    notes.extend(des_notes)
    lower = None if lower_bound is None else lower_bound.value_ticks

    if upper is None and lower is None:
        raise AnalysisError(
            "degraded fallback produced no bound (" + "; ".join(notes) + ")"
        )

    satisfied: bool | None = None
    if upper is not None and upper < requirement.bound:
        satisfied = True
    elif lower is not None and lower >= requirement.bound:
        satisfied = False
    return lower, upper, satisfied


def degraded_cell_result(cell, index: int, reason: str, attempts: int,
                         config: SupervisorConfig):
    """Analytic fallback for a cell whose exact exploration died or hung.

    Computes what the cheap engines can still say about the cell's
    requirement (:func:`degraded_interval`) and returns a ``CellResult``
    with ``termination="degraded"``.  Raises :class:`AnalysisError` when no
    engine produces a bound (the caller quarantines the cell then).
    """
    from repro.sweep.runner import CellResult, cell_model

    if isinstance(cell, DiffCheckCell):
        raise AnalysisError(
            "a diffcheck cell has no analytic fallback (the campaign itself "
            "is the cross-check); the seed window must be quarantined"
        )
    # the "degraded" stage hook: a test plan can poison the fallback too
    maybe_inject(cell.name, index, attempts, stage="degraded")
    started = time.perf_counter()
    model = cell_model(cell)
    lower, upper, satisfied = degraded_interval(model, cell.requirement, config)
    timebase = model.timebase
    return CellResult(
        name=cell.name,
        requirement=cell.requirement,
        combination=cell.combination,
        configuration=cell.configuration,
        # the exact WCRT is unknown; the degraded interval lives in the
        # dedicated bound fields so anchors/baselines cannot confuse the two
        wcrt_ticks=None,
        wcrt_ms=None,
        is_lower_bound=False,
        satisfied=satisfied,
        states_explored=0,
        states_stored=0,
        transitions=0,
        inclusions=0,
        explore_seconds=0.0,
        states_per_second=0.0,
        termination="degraded",
        wall_seconds=time.perf_counter() - started,
        worker_pid=os.getpid(),
        attempts=attempts,
        failure=reason,
        degraded_lower_ticks=lower,
        degraded_lower_ms=None if lower is None else timebase.to_milliseconds(lower),
        degraded_upper_ticks=upper,
        degraded_upper_ms=None if upper is None else timebase.to_milliseconds(upper),
    )


def _settle(cell, index: int, reason: str, attempts: int, config: SupervisorConfig):
    """Resolve an unrecoverable cell per the configured policy.

    Returns a degraded or quarantined result (``on_error="degrade"``) or
    raises an :class:`AnalysisError` carrying the cell attribution
    (``on_error="raise"``).
    """
    if config.on_error == "raise":
        raise AnalysisError(
            f"sweep {cell_attribution(cell, index)} failed after "
            f"{attempts} attempt(s): {reason}"
        )
    try:
        return degraded_cell_result(cell, index, reason, attempts, config)
    except ReproError as exc:
        return quarantined_cell_result(
            cell, index, f"{reason}; degraded fallback failed: {exc}", attempts
        )


# --------------------------------------------------------------------- serial
def run_supervised_serial(tasks, config: SupervisorConfig, journal=None) -> dict:
    """Run ``(index, cell)`` tasks in-process with supervision semantics.

    Deadlines are enforced *cooperatively* (through the engines' deadline
    hooks -- a serial run has nobody to SIGKILL it); exceptions degrade or
    raise exactly like the multiprocess supervisor.  A ``"crash"``/``"oom"``
    fault (or a real one) takes the whole process down -- which is precisely
    the interrupted-run scenario the checkpoint journal recovers from.
    """
    from repro.sweep.runner import run_cell

    results: dict[int, object] = {}
    for index, cell in tasks:
        deadline = (
            time.perf_counter() + config.deadline_seconds
            if config.deadline_seconds is not None
            else None
        )
        try:
            result = run_cell(cell, index=index, deadline=deadline)
        except ReproError as exc:
            if config.on_error == "raise":
                raise AnalysisError(
                    f"sweep {cell_attribution(cell, index)} failed: {exc}"
                ) from exc
            result = _settle(cell, index, str(exc), 1, config)
        results[index] = result
        if journal is not None:
            journal.record(index, result)
    return results


# --------------------------------------------------------------- worker side
def _worker_main(conn, initializer=None) -> None:
    """Worker loop: receive ``(index, attempt, cell)``, send back the result.

    An in-cell exception is reported as an ``("error", ...)`` payload -- the
    worker itself is healthy and keeps serving.  Only pipe loss (the
    supervisor went away) or a poison pill ends the loop.
    """
    from repro.sweep.runner import _worker_init, run_cell

    (initializer or _worker_init)()
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if task is None:
            break
        index, attempt, cell = task
        try:
            payload = ("ok", index, run_cell(cell, index=index, attempt=attempt))
        except KeyboardInterrupt:  # pragma: no cover - racy by nature
            break
        except BaseException as exc:
            payload = ("error", index, f"{type(exc).__name__}: {exc}")
        try:
            conn.send(payload)
        except (BrokenPipeError, OSError):  # pragma: no cover - parent died
            break


class _WorkerHandle:
    """One supervised worker process and its private pipe."""

    __slots__ = ("process", "conn")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn


def spawn_worker(context, initializer=None) -> _WorkerHandle:
    """Start one supervised worker on a private duplex pipe.

    Shared by :class:`Supervisor` (batch sweeps) and the analysis
    service's persistent pool (:mod:`repro.serve.pool`).
    """
    parent_conn, child_conn = context.Pipe(duplex=True)
    process = context.Process(
        target=_worker_main,
        args=(child_conn, initializer),
        daemon=True,
    )
    process.start()
    child_conn.close()
    return _WorkerHandle(process, parent_conn)


def discard_worker(worker: _WorkerHandle) -> None:
    """Close a worker's pipe and make sure its process is dead and reaped."""
    try:
        worker.conn.close()
    except OSError:  # pragma: no cover - already gone
        pass
    if worker.process.is_alive():
        worker.process.kill()
    worker.process.join()


def _interruptible_sleep(seconds: float) -> None:
    """Sleep in short slices so SIGINT/SIGTERM interrupt within ~0.2 s.

    A single long ``time.sleep`` is restarted by Python after the C-level
    signal handler runs, and on some platforms the KeyboardInterrupt only
    surfaces once the full sleep elapses.  Chunking bounds the teardown
    latency of a supervisor interrupted during retry backoff.
    """
    deadline = time.perf_counter() + seconds
    while True:
        remaining = deadline - time.perf_counter()
        if remaining <= 0:
            return
        time.sleep(min(remaining, 0.2))


# ----------------------------------------------------------------- supervisor
class Supervisor:
    """The multiprocess supervision loop (see the module docstring)."""

    def __init__(self, tasks, workers: int, context, config: SupervisorConfig,
                 journal=None, initializer=None):
        #: remaining work as (index, cell) pairs
        self.tasks = list(tasks)
        self.worker_count = max(1, min(int(workers), len(self.tasks) or 1))
        self.context = context
        self.config = config
        self.journal = journal
        self.initializer = initializer
        self._sequence = 0

    # -- worker lifecycle -------------------------------------------------
    def _spawn(self) -> _WorkerHandle:
        return spawn_worker(self.context, self.initializer)

    @staticmethod
    def _discard(worker: _WorkerHandle) -> None:
        discard_worker(worker)

    # -- outcomes ---------------------------------------------------------
    def _complete(self, results: dict, index: int, result) -> None:
        results[index] = result
        if self.journal is not None:
            self.journal.record(index, result)

    def _settled(self, results: dict, index: int, cell, reason: str,
                 attempts: int) -> None:
        self._complete(results, index,
                       _settle(cell, index, reason, attempts, self.config))

    # -- the loop ---------------------------------------------------------
    def run(self) -> dict:
        from multiprocessing.connection import wait as connection_wait

        config = self.config
        # SIGTERM must tear the pool down exactly like Ctrl-C: raise
        # KeyboardInterrupt so the `finally` block below reaps every live
        # worker (a raw SIGTERM death would orphan them).  Signal handlers
        # are process-global and main-thread-only; restore on exit.
        restore_sigterm = False
        previous_sigterm = None
        if threading.current_thread() is threading.main_thread():
            def _on_sigterm(signum, frame):  # pragma: no cover - signal path
                raise KeyboardInterrupt
            previous_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)
            restore_sigterm = True
        results: dict[int, object] = {}
        pending: deque = deque((index, cell, 1) for index, cell in self.tasks)
        delayed: list = []  # heap of (ready_at, sequence, index, cell, attempt)
        total = len(self.tasks)
        workers = [self._spawn() for _ in range(self.worker_count)]
        idle: list[_WorkerHandle] = list(workers)
        busy: dict[_WorkerHandle, tuple] = {}

        def retry_later(index: int, cell, attempt: int) -> None:
            self._sequence += 1
            ready_at = time.perf_counter() + config.backoff(attempt)
            heapq.heappush(delayed, (ready_at, self._sequence, index, cell, attempt))

        def replace(worker: _WorkerHandle) -> None:
            self._discard(worker)
            workers.remove(worker)
            fresh = self._spawn()
            workers.append(fresh)
            idle.append(fresh)

        try:
            while len(results) < total:
                now = time.perf_counter()
                while delayed and delayed[0][0] <= now:
                    _, _, index, cell, attempt = heapq.heappop(delayed)
                    pending.append((index, cell, attempt))
                while pending and idle:
                    worker = idle.pop()
                    if not worker.process.is_alive():  # pragma: no cover - rare
                        self._discard(worker)
                        workers.remove(worker)
                        worker = self._spawn()
                        workers.append(worker)
                    index, cell, attempt = pending.popleft()
                    worker.conn.send((index, attempt, cell))
                    deadline = (
                        now + config.deadline_seconds
                        if config.deadline_seconds is not None
                        else None
                    )
                    busy[worker] = (index, cell, attempt, deadline)
                if not busy:
                    if delayed:
                        # interruptible: Ctrl-C/SIGTERM during a retry backoff
                        # must not stall teardown for the full backoff
                        _interruptible_sleep(
                            max(0.0, delayed[0][0] - time.perf_counter())
                        )
                    continue

                timeout = None
                for _index, _cell, _attempt, deadline in busy.values():
                    if deadline is not None:
                        remaining = deadline - time.perf_counter()
                        timeout = remaining if timeout is None else min(timeout, remaining)
                if delayed:
                    remaining = delayed[0][0] - time.perf_counter()
                    timeout = remaining if timeout is None else min(timeout, remaining)
                if timeout is not None:
                    timeout = max(0.0, timeout)

                watched: dict[object, _WorkerHandle] = {}
                for worker in busy:
                    watched[worker.conn] = worker
                    watched[worker.process.sentinel] = worker
                ready = connection_wait(list(watched), timeout=timeout)
                for worker in {watched[obj] for obj in ready}:
                    index, cell, attempt, _deadline = busy.pop(worker)
                    payload = None
                    if worker.conn.poll():
                        try:
                            payload = worker.conn.recv()
                        except (EOFError, OSError):
                            payload = None
                    if payload is None:
                        # abnormal exit: no result ever made it onto the pipe
                        worker.process.join()
                        exitcode = worker.process.exitcode
                        replace(worker)
                        if attempt < config.max_attempts:
                            retry_later(index, cell, attempt + 1)
                        else:
                            self._settled(
                                results, index, cell,
                                f"worker died abnormally (exit code {exitcode}) "
                                f"on all {attempt} attempt(s)",
                                attempt,
                            )
                    else:
                        status, _echo, value = payload
                        idle.append(worker)
                        if status == "ok":
                            self._complete(results, index, value)
                        else:
                            # a deterministic in-worker exception: retrying
                            # would deterministically fail again
                            self._settled(results, index, cell, str(value), attempt)

                # hard deadlines: kill overrunning workers, no retry -- a hang
                # already burnt a full deadline; degrade (or raise) directly
                now = time.perf_counter()
                overdue = [
                    worker for worker, (_i, _c, _a, deadline) in busy.items()
                    if deadline is not None and now > deadline
                ]
                for worker in overdue:
                    index, cell, attempt, _deadline = busy.pop(worker)
                    worker.process.kill()
                    replace(worker)
                    self._settled(
                        results, index, cell,
                        f"hard deadline of {config.deadline_seconds}s exceeded "
                        f"(worker killed)",
                        attempt,
                    )
            return results
        finally:
            if restore_sigterm:
                signal.signal(signal.SIGTERM, previous_sigterm)
            for worker in workers:
                if worker not in busy and worker.process.is_alive():
                    try:
                        worker.conn.send(None)
                    except (BrokenPipeError, OSError):
                        pass
                self._discard(worker)
